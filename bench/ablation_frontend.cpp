//===- bench/ablation_frontend.cpp - Frontend-knob ablations --------------===//
//
// Measures each propagation-graph construction knob's contribution on the
// same corpus:
//
//  * points-to pass off (§5.2's alias-borne field flows disappear);
//  * locals() modeling off (§5.2);
//  * precise inlining on (beyond paper: local wrapper bodies own the flow);
//  * cross-module linking on (beyond paper: project-local helper modules);
//  * warm-started retraining (beyond paper: production retraining cost).
//
// Each row reports graph size, learned predictions, exact precision, and
// the seed-only + inferred-spec taint reports.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

namespace {

struct RowResult {
  size_t Edges = 0;
  size_t Predicted = 0;
  double Precision = 0.0;
  size_t SeedReports = 0;
  size_t FullReports = 0;
  double Seconds = 0.0;
};

RowResult runConfig(const corpus::Corpus &Data,
                    const infer::PipelineOptions &Opts) {
  RowResult Out;
  infer::Session S(Opts);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();
  Out.Edges = R.Graph.numEdges();
  Out.Seconds = R.BuildSeconds + R.inferenceSeconds();

  size_t Correct = 0;
  for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink}) {
    RolePrecision P = exactPrecision(R.Learned, Data.Truth, Data.Seed, Ro,
                                     ScoreThreshold);
    Out.Predicted += P.Predicted;
    Correct += P.Correct;
  }
  Out.Precision = Out.Predicted
                      ? static_cast<double>(Correct) / Out.Predicted
                      : 0.0;

  taint::TaintAnalyzer Analyzer(R.Graph);
  taint::RoleResolver SeedOnly(&Data.Seed.Spec, nullptr);
  taint::RoleResolver Both(&Data.Seed.Spec, &R.Learned, ScoreThreshold);
  Out.SeedReports = Analyzer.analyze(SeedOnly).size();
  Out.FullReports = Analyzer.analyze(Both).size();
  return Out;
}

} // namespace

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.PUtilsSanitizer = 0.3;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::cout << "=== Ablation: frontend construction knobs ===\n\n";
  TablePrinter Table({"Configuration", "Edges", "# Predicted", "Precision",
                      "Seed reports", "Inferred reports", "Time (s)"});

  struct Config {
    const char *Name;
    void (*Apply)(infer::PipelineOptions &);
  };
  const Config Configs[] = {
      {"Paper defaults", [](infer::PipelineOptions &) {}},
      {"No points-to pass",
       [](infer::PipelineOptions &O) { O.Build.UsePointsTo = false; }},
      {"No locals() modeling",
       [](infer::PipelineOptions &O) { O.Build.ModelLocals = false; }},
      {"Precise inlining",
       [](infer::PipelineOptions &O) { O.Build.PreciseInlining = true; }},
      {"Cross-module linking",
       [](infer::PipelineOptions &O) { O.Build.CrossModuleFlows = true; }},
  };

  for (const Config &C : Configs) {
    infer::PipelineOptions Opts = standardPipelineOptions();
    C.Apply(Opts);
    RowResult R = runConfig(Data, Opts);
    Table.addRow({C.Name, std::to_string(R.Edges),
                  std::to_string(R.Predicted), percent(R.Precision),
                  std::to_string(R.SeedReports),
                  std::to_string(R.FullReports),
                  formatString("%.2f", R.Seconds)});
  }
  Table.print(std::cout);

  // Warm-start retraining cost: retrain on the same corpus from the
  // previous solution with a small budget and verify the solution holds.
  {
    infer::PipelineOptions Opts = standardPipelineOptions();
    // One Session, two solves: the retrain reuses the parsed graph and the
    // generated constraint system, exactly the production retraining path.
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    infer::PipelineResult Full = S.solve();
    S.options().Solve.MaxIterations = 50;
    S.options().WarmStart = &Full.Learned;
    infer::PipelineResult Retrained = S.solve();
    size_t Kept = 0, Total = 0;
    for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink})
      for (const auto &[Rep, Score] : Full.Learned.ranked(Ro, ScoreThreshold)) {
        ++Total;
        Kept += Retrained.Learned.score(Rep, Ro) >= ScoreThreshold;
      }
    std::cout << formatString(
        "\nWarm-started retraining (50 iterations vs %d cold): keeps "
        "%zu/%zu predictions in\n%.2fs instead of %.2fs.\n",
        Opts.Solve.MaxIterations, Kept, Total, Retrained.SolveSeconds,
        Full.SolveSeconds);
  }

  std::cout << "\nExpected shape: removing the points-to pass drops the "
               "alias-borne edges; precise\ninlining and cross-module "
               "linking cut seed-only false positives; warm starts make\n"
               "retraining nearly free.\n";
  return 0;
}
