//===- tools/seldon_cli.cpp - Command-line driver -------------------------===//
//
// The `seldon` command-line tool: run the paper's end-to-end pipeline on
// real directories of Python files.
//
//   seldon learn   [--seed FILE] [--out FILE] [options] DIR...
//       Learn a taint specification from one or more repositories and
//       write it in the scored text format.
//
//   seldon analyze [--seed FILE] [--spec FILE] [options] DIR...
//       Run the taint analyzer; reports are ranked by confidence and
//       deduplicated per (source API, sink API) pair.
//
//   seldon graph   [--dot] FILE.py
//       Print one file's propagation graph (text or Graphviz DOT).
//
//   seldon seed
//       Print the built-in App. B-style seed specification.
//
//===----------------------------------------------------------------------===//

#include "active/ActiveLearner.h"
#include "infer/Pipeline.h"
#include "propgraph/GraphExport.h"
#include "propgraph/GraphStats.h"
#include "pysem/ProjectLoader.h"
#include "service/FeedbackJson.h"
#include "service/QueryResult.h"
#include "spec/SpecIO.h"
#include "taint/JsonExport.h"
#include "taint/ReportRenderer.h"
#include "taint/TaintAnalyzer.h"

#include "support/ArgParser.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

using namespace seldon;
using seldon::formatString;

namespace {

struct CliOptions {
  std::string SeedFile;
  std::string SpecFile;
  std::string OutFile;
  double Threshold = 0.1;
  int Iterations = 600;
  size_t RepCutoff = 5;
  size_t Top = 25;
  unsigned Jobs = 0; // 0 = all hardware threads.
  bool Strict = false;
  double DeadlineSeconds = 0.0;
  std::string CacheDir;
  bool ShardCache = false;
  bool NoWarmStart = false;
  bool CacheStats = false;
  bool Progress = false;
  bool Metrics = false;
  std::string MetricsOut;
  bool SolverStats = false;
  std::string SolverBackend = "compiled";
  bool LegacySolver = false; // Deprecated alias for --solver-backend=legacy.
  bool Dot = false;
  bool Dedup = true;
  bool Json = false;
  bool Active = false;
  std::string OracleFile;
  std::string OracleOut;
  int Rounds = 10;
  size_t QueriesPerRound = 8;
  std::string FeedbackFile;
  std::string ExplainRep;
  std::string ExplainRole = "source";
  std::vector<std::string> Paths;
};

/// Resolves --solver-backend (and the deprecated --legacy-solver alias)
/// into a SolveOptions backend; false + stderr diagnostic on bad names.
bool resolveBackend(const CliOptions &Opts, solver::SolverBackend &Out) {
  if (!solver::parseSolverBackend(Opts.SolverBackend, Out)) {
    std::fprintf(stderr,
                 "error: unknown --solver-backend '%s' (expected "
                 "legacy|compiled|simd|simd-f32)\n",
                 Opts.SolverBackend.c_str());
    return false;
  }
  if (Opts.LegacySolver)
    Out = solver::SolverBackend::Legacy;
  return true;
}

/// Renders pipeline progress to stderr. The Session serializes callbacks,
/// so plain fprintf is safe even with a parallel frontend.
class CliProgress : public infer::ProgressObserver {
public:
  void onPhase(infer::Phase P) override {
    std::fprintf(stderr, "[%s]\n", infer::phaseName(P));
  }
  void onProjectGraphBuilt(size_t Done, size_t Total) override {
    // At most ~10 lines however large the corpus is.
    size_t Step = std::max<size_t>(1, Total / 10);
    if (Done == Total || Done % Step == 0)
      std::fprintf(stderr, "  parsed %zu/%zu project(s)\n", Done, Total);
  }
  void onSolveIteration(int Iteration, double Objective) override {
    if (Iteration % 50 == 0)
      std::fprintf(stderr, "  iteration %d: objective %.6f\n", Iteration,
                   Objective);
  }
  void onStageFinished(infer::Phase P, double Seconds) override {
    std::fprintf(stderr, "  [%s] finished in %.2fs\n", infer::phaseName(P),
                 Seconds);
  }
};

/// Pre-validation integer targets; parseArgs() range-checks them into
/// CliOptions after the flag sweep.
struct RawCliOptions {
  unsigned long Iters = 600;
  unsigned long Cutoff = 5;
  unsigned long Top = 25;
  unsigned long Jobs = 0;
  unsigned long Rounds = 10;
  unsigned long QueriesPerRound = 8;
  bool NoDedup = false;
};

/// Registers the shared flag vocabulary on \p Parser. The usage screen is
/// generated from this same table, so help and behavior cannot drift.
void registerFlags(ArgParser &Parser, CliOptions &Opts,
                   RawCliOptions &Raw) {
  Parser
      .string("--seed", &Opts.SeedFile, "FILE",
              "seed specification (App. B format; default: built-in)")
      .string("--spec", &Opts.SpecFile, "FILE",
              "learned specification to analyze with")
      .string("--out", &Opts.OutFile, "FILE",
              "output file (default: stdout)")
      .decimal("--threshold", &Opts.Threshold, "T",
               "score threshold (default 0.1)")
      .unsignedInt("--iters", &Raw.Iters, "N",
                   "solver iterations (default 600)")
      .unsignedInt("--cutoff", &Raw.Cutoff, "N",
                   "representation frequency cutoff (default 5)")
      .unsignedInt("--top", &Raw.Top, "N",
                   "max reports to print (default 25)")
      .unsignedInt("--jobs", &Raw.Jobs, "N",
                   "worker threads for parsing/learning (default: all\n"
                   "hardware threads; results are identical for any N)")
      .flag("--strict", &Opts.Strict,
            "learn/explain: fail on the first broken project\n"
            "instead of quarantining it and continuing")
      .decimal("--deadline-s", &Opts.DeadlineSeconds, "S",
               "learn/explain: whole-run wall-clock budget in\n"
               "seconds; an expiring run ends with partial,\n"
               "clearly-flagged results (exit code 2)")
      .string("--cache-dir", &Opts.CacheDir, "DIR",
              "learn/explain: persistent propagation-graph\n"
              "cache; projects whose sources are unchanged\n"
              "skip parsing (identical learned specs)")
      .flag("--shard-cache", &Opts.ShardCache,
            "learn: also cache per-project constraint shards\n"
            "under DIR/shards (requires --cache-dir); re-learns\n"
            "re-extract only changed projects and warm-start\n"
            "from the existing --out spec (identical specs when\n"
            "warm start is off)")
      .flag("--no-warm-start", &Opts.NoWarmStart,
            "learn: start the solve cold even when --shard-cache\n"
            "could seed it from the existing --out spec")
      .flag("--cache-stats", &Opts.CacheStats,
            "print cache hit/miss/eviction counts to stderr")
      .flag("--progress", &Opts.Progress,
            "learn/explain: print phase progress to stderr")
      .flag("--metrics", &Opts.Metrics,
            "print pipeline metrics tables to stderr on exit")
      .string("--metrics-out", &Opts.MetricsOut, "F",
              "write the metrics snapshot as JSON to F")
      .flag("--solver-stats", &Opts.SolverStats,
            "learn: print compiled-system statistics (rows\n"
            "before/after dedup, non-zeros, ms/iteration)")
      .string("--solver-backend", &Opts.SolverBackend, "B",
              "learn/explain: evaluator backend —\n"
              "legacy|compiled|simd|simd-f32 (default compiled;\n"
              "legacy/compiled/simd learn byte-identical specs,\n"
              "simd-f32 matches within a documented tolerance)")
      .flag("--legacy-solver", &Opts.LegacySolver,
            "learn/explain: solve with the uncompiled\n"
            "reference evaluator (same learned spec, slower;\n"
            "alias for --solver-backend=legacy)")
      .flag("--active", &Opts.Active,
            "learn: run the active-learning loop — rank uncertain\n"
            "scores, query the --oracle file, pin the answers, and\n"
            "re-solve warm-started each round")
      .string("--oracle", &Opts.OracleFile, "FILE",
              "learn: replayable JSON answer file for --active\n"
              "({\"answers\":[{\"rep\":...,\"role\":...,\"truth\":...}]});\n"
              "pairs without an entry stay unpinned")
      .string("--oracle-out", &Opts.OracleOut, "FILE",
              "learn: write the active run's query transcript in\n"
              "the --oracle format (replays byte-identically)")
      .unsignedInt("--rounds", &Raw.Rounds, "N",
                   "learn: active query rounds after the passive\n"
                   "solve (default 10)")
      .unsignedInt("--queries-per-round", &Raw.QueriesPerRound, "N",
                   "learn: oracle queries proposed per round\n"
                   "(default 8)")
      .string("--feedback", &Opts.FeedbackFile, "FILE",
              "learn: accept/reject verdict file\n"
              "({\"accept\":[{\"rep\":...,\"role\":...}],\"reject\":[...]})\n"
              "reweighting the constraint system before the solve")
      .flag("--no-dedup", &Raw.NoDedup,
            "keep duplicate (source, sink) API pairs")
      .flag("--json", &Opts.Json,
            "analyze/explain: emit machine-readable JSON")
      .flag("--dot", &Opts.Dot, "graph: emit Graphviz DOT")
      .string("--rep", &Opts.ExplainRep, "R",
              "explain: the representation to explain")
      .string("--role", &Opts.ExplainRole, "ROLE",
              "explain: source|sanitizer|sink (default source)");
}

void usage() {
  CliOptions Opts;
  RawCliOptions Raw;
  ArgParser Parser;
  registerFlags(Parser, Opts, Raw);
  std::fprintf(
      stderr,
      "usage: seldon <command> [options] <paths...>\n"
      "\n"
      "commands:\n"
      "  learn     learn a taint specification from Python repositories\n"
      "  analyze   report unsanitized source-to-sink flows\n"
      "  graph     print a file's propagation graph\n"
      "  explain   show the constraints behind one learned score\n"
      "  diff      compare two learned specification files\n"
      "  stats     propagation-graph statistics for repositories\n"
      "  seed      print the built-in seed specification\n"
      "\n"
      "options:\n%s",
      Parser.usage().c_str());
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  RawCliOptions Raw;
  ArgParser Parser;
  registerFlags(Parser, Opts, Raw);
  if (!Parser.parse(Argc, Argv, 2, &Opts.Paths))
    return false;

  if (Raw.Iters == 0 || Raw.Iters > 10'000'000) {
    std::fprintf(stderr,
                 "error: --iters must be in [1, 10000000], got %lu\n",
                 Raw.Iters);
    return false;
  }
  Opts.Iterations = static_cast<int>(Raw.Iters);
  Opts.RepCutoff = static_cast<size_t>(Raw.Cutoff);
  Opts.Top = static_cast<size_t>(Raw.Top);
  if (Opts.DeadlineSeconds < 0.0) {
    std::fprintf(stderr,
                 "error: --deadline-s must be non-negative, got %g\n",
                 Opts.DeadlineSeconds);
    return false;
  }
  // 0 means "all hardware threads"; anything above a generous
  // oversubscription cap is almost certainly a typo (or an unchecked
  // negative) and would only thrash, so clamp it loudly.
  unsigned long Cap = 8ul * ThreadPool::hardwareConcurrency();
  if (Raw.Jobs > Cap) {
    std::fprintf(stderr,
                 "warning: --jobs %lu exceeds %lu (8x hardware "
                 "threads); clamping to %lu\n",
                 Raw.Jobs, Cap, Cap);
    Raw.Jobs = Cap;
  }
  Opts.Jobs = static_cast<unsigned>(Raw.Jobs);
  Opts.Dedup = !Raw.NoDedup;
  if (Opts.ShardCache && Opts.CacheDir.empty()) {
    std::fprintf(stderr, "error: --shard-cache requires --cache-dir\n");
    return false;
  }
  if (Raw.Rounds == 0 || Raw.Rounds > 1'000'000) {
    std::fprintf(stderr, "error: --rounds must be in [1, 1000000], got %lu\n",
                 Raw.Rounds);
    return false;
  }
  Opts.Rounds = static_cast<int>(Raw.Rounds);
  if (Raw.QueriesPerRound == 0) {
    std::fprintf(stderr, "error: --queries-per-round must be positive\n");
    return false;
  }
  Opts.QueriesPerRound = static_cast<size_t>(Raw.QueriesPerRound);
  if (Opts.Active && Opts.OracleFile.empty()) {
    std::fprintf(stderr, "error: --active requires --oracle FILE\n");
    return false;
  }
  if (!Opts.OracleFile.empty() && !Opts.Active) {
    std::fprintf(stderr, "error: --oracle requires --active\n");
    return false;
  }
  return true;
}

bool writeOutput(const CliOptions &Opts, const std::string &Content) {
  if (Opts.OutFile.empty()) {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Opts.OutFile);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Opts.OutFile.c_str());
    return false;
  }
  Out << Content;
  std::fprintf(stderr, "wrote %s\n", Opts.OutFile.c_str());
  return true;
}

spec::SeedSpec loadSeed(const CliOptions &Opts, bool &Ok) {
  Ok = true;
  if (Opts.SeedFile.empty())
    return spec::SeedSpec::parse(spec::paperSeedSpecText());
  spec::IOResult<spec::SeedSpec> Seed = spec::loadSeedSpec(Opts.SeedFile);
  for (const std::string &W : Seed.Warnings)
    std::fprintf(stderr, "seed: %s\n", W.c_str());
  if (!Seed) {
    std::fprintf(stderr, "error: %s\n", Seed.Error.c_str());
    Ok = false;
    return spec::SeedSpec();
  }
  return std::move(Seed.Value);
}

std::vector<pysem::Project> loadCorpus(const CliOptions &Opts, bool &Ok) {
  Ok = true;
  std::vector<pysem::Project> Corpus;
  std::vector<std::vector<std::string>> Errors;
  std::vector<std::optional<pysem::Project>> Loaded =
      pysem::loadProjectsFromDirs(Opts.Paths, pysem::LoadOptions(),
                                  Opts.Jobs, &Errors);
  for (size_t I = 0; I < Loaded.size(); ++I) {
    for (const std::string &E : Errors[I])
      std::fprintf(stderr, "warning: %s\n", E.c_str());
    if (!Loaded[I]) {
      std::fprintf(stderr, "error: %s is not a directory\n",
                   Opts.Paths[I].c_str());
      Ok = false;
      return Corpus;
    }
    std::fprintf(stderr, "loaded %s: %zu Python files (%zu parse "
                 "diagnostics)\n",
                 Opts.Paths[I].c_str(), Loaded[I]->modules().size(),
                 Loaded[I]->numErrors());
    Corpus.push_back(std::move(*Loaded[I]));
  }
  return Corpus;
}

/// Enables the graph cache on \p Session when --cache-dir was given.
/// Returns false (after printing the reason) when the directory is
/// unusable — a misspelled --cache-dir should be a CLI error, not a
/// silently uncached run.
bool setupCache(infer::Session &Session, const CliOptions &Opts) {
  if (Opts.CacheDir.empty())
    return true;
  Session.enableCache(Opts.CacheDir);
  if (!Session.graphCache()->valid()) {
    std::fprintf(stderr, "error: %s\n",
                 Session.graphCache()->error().c_str());
    return false;
  }
  if (Opts.ShardCache) {
    Session.enableShardCache(Opts.CacheDir + "/shards");
    if (!Session.shardCache()->valid()) {
      std::fprintf(stderr, "error: %s\n",
                   Session.shardCache()->error().c_str());
      return false;
    }
  }
  return true;
}

/// Prints the run's cache counters (and any eviction diagnostics) when
/// --cache-stats was given.
void printCacheStats(const infer::PipelineResult &R,
                     const CliOptions &Opts) {
  if (!Opts.CacheStats)
    return;
  if (!R.UsedCache) {
    std::fprintf(stderr, "cache: disabled (no --cache-dir)\n");
    return;
  }
  const cache::CacheStats &S = R.Cache;
  std::fprintf(stderr,
               "cache: %llu hit(s), %llu miss(es), %llu evicted, "
               "%llu stored, %llu bytes read, %llu bytes written\n",
               static_cast<unsigned long long>(S.Hits),
               static_cast<unsigned long long>(S.Misses),
               static_cast<unsigned long long>(S.Evictions),
               static_cast<unsigned long long>(S.Stores),
               static_cast<unsigned long long>(S.BytesRead),
               static_cast<unsigned long long>(S.BytesWritten));
  for (const std::string &E : S.Errors)
    std::fprintf(stderr, "cache: %s\n", E.c_str());
  if (!R.UsedShardCache)
    return;
  const cache::CacheStats &Sh = R.ShardCacheStats;
  std::fprintf(stderr,
               "shards: %llu replayed, %llu re-extracted, %llu evicted, "
               "%llu stored, %llu bytes read, %llu bytes written\n",
               static_cast<unsigned long long>(R.Incr.ShardsHit),
               static_cast<unsigned long long>(R.Incr.ShardsRebuilt),
               static_cast<unsigned long long>(Sh.Evictions),
               static_cast<unsigned long long>(Sh.Stores),
               static_cast<unsigned long long>(Sh.BytesRead),
               static_cast<unsigned long long>(Sh.BytesWritten));
  for (const std::string &E : Sh.Errors)
    std::fprintf(stderr, "shards: %s\n", E.c_str());
}

/// Prints the run-health summary to stderr and returns the exit code the
/// health implies for an otherwise-successful run: 0 clean, 2 degraded. A
/// clean run prints nothing.
int reportHealth(const infer::RunHealth &H) {
  if (H.status() == infer::RunStatus::Clean) {
    // Incidents without degradation (transparent cache failures) are still
    // worth a line each.
    for (const std::string &I : H.CacheIncidents)
      std::fprintf(stderr, "health: %s\n", I.c_str());
    return 0;
  }
  std::fprintf(stderr, "health: %s\n",
               infer::runStatusName(H.status()));
  if (!H.Quarantined.empty()) {
    std::fprintf(stderr, "health: quarantined %zu project(s):\n",
                 H.Quarantined.size());
    TablePrinter Table({"index", "project", "reason"});
    for (const infer::QuarantinedProject &Q : H.Quarantined)
      Table.addRow({std::to_string(Q.Index), Q.Name, Q.Reason});
    std::ostringstream OS;
    Table.print(OS);
    std::fputs(OS.str().c_str(), stderr);
  }
  for (const std::string &I : H.CacheIncidents)
    std::fprintf(stderr, "health: %s\n", I.c_str());
  if (H.SolverNonFiniteSteps > 0 || H.SolverRecoveries > 0)
    std::fprintf(stderr,
                 "health: solver hit %d non-finite step(s), recovered %d "
                 "time(s)%s\n",
                 H.SolverNonFiniteSteps, H.SolverRecoveries,
                 H.SolverFellBack ? ", fell back to best finite iterate"
                                  : "");
  if (H.DeadlineExpired)
    std::fprintf(stderr,
                 "health: run deadline expired during the %s stage; "
                 "results are partial\n",
                 H.DeadlineStage.c_str());
  return 2;
}

int cmdLearn(const CliOptions &Opts) {
  bool Ok = false;
  spec::SeedSpec Seed = loadSeed(Opts, Ok);
  if (!Ok)
    return 1;
  std::vector<pysem::Project> Corpus = loadCorpus(Opts, Ok);
  if (!Ok || Corpus.empty()) {
    std::fprintf(stderr, "error: no input repositories\n");
    return 1;
  }

  infer::PipelineOptions PipelineOpts;
  PipelineOpts.Solve.MaxIterations = Opts.Iterations;
  PipelineOpts.Gen.RepCutoff = Opts.RepCutoff;
  PipelineOpts.Jobs = Opts.Jobs;
  if (!resolveBackend(Opts, PipelineOpts.Solve.Backend))
    return 1;
  PipelineOpts.Strict = Opts.Strict;
  PipelineOpts.DeadlineSeconds = Opts.DeadlineSeconds;

  // A --feedback verdict file reweights the constraint system on every
  // solve; the set is borrowed by the options, so it lives here.
  constraints::FeedbackSet Verdicts;
  if (!Opts.FeedbackFile.empty()) {
    std::string Error;
    size_t Accepted = 0, Rejected = 0;
    if (!service::loadFeedbackFile(Opts.FeedbackFile, Verdicts, Error,
                                   &Accepted, &Rejected)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "feedback: %zu accepted, %zu rejected from %s\n",
                 Accepted, Rejected, Opts.FeedbackFile.c_str());
    PipelineOpts.Feedback = &Verdicts;
  }

  infer::Session Session(PipelineOpts);
  CliProgress Progress;
  if (Opts.Progress)
    Session.setObserver(&Progress);
  if (!setupCache(Session, Opts))
    return 1;

  // Incremental re-learns warm-start from the spec the previous run wrote
  // to --out (kept alive here; options().WarmStart borrows). The cold
  // start stays the default everywhere else so differential runs see the
  // exact reference trajectory.
  spec::LearnedSpec PreviousSpec;
  if (Opts.ShardCache && !Opts.NoWarmStart && !Opts.OutFile.empty() &&
      std::ifstream(Opts.OutFile).good()) {
    spec::IOResult<spec::LearnedSpec> Previous =
        spec::loadLearnedSpec(Opts.OutFile);
    if (Previous) {
      PreviousSpec = std::move(Previous.Value);
      Session.options().WarmStart = &PreviousSpec;
      std::fprintf(stderr,
                   "warm start: seeding solve from %s (disable with "
                   "--no-warm-start)\n",
                   Opts.OutFile.c_str());
    } else {
      std::fprintf(stderr, "warm start: skipped (%s)\n",
                   Previous.Error.c_str());
    }
  }

  Session.addProjects(Corpus);
  infer::PipelineResult R;
  if (Opts.Active) {
    active::FileOracle Oracle;
    std::string Error;
    if (!active::FileOracle::load(Opts.OracleFile, Oracle, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    active::ActiveOptions AO;
    AO.MaxRounds = Opts.Rounds;
    AO.QueriesPerRound = Opts.QueriesPerRound;
    AO.Threshold = Opts.Threshold;
    active::ActiveResult AR =
        active::runActiveLoop(Session, Seed, Oracle, AO);
    std::fprintf(stderr,
                 "active: %zu round(s), %zu of %zu candidate(s) queried, "
                 "%zu pinned, %s\n",
                 AR.Rounds.size(), AR.TotalQueries, AR.Candidates,
                 AR.TotalPinned,
                 AR.Converged ? "converged" : "budget exhausted");
    if (!Opts.OracleOut.empty()) {
      std::ofstream Out(Opts.OracleOut,
                        std::ios::binary | std::ios::trunc);
      if (Out)
        Out << active::writeOracleFile(AR.Transcript);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     Opts.OracleOut.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote transcript to %s (%zu exchange(s))\n",
                   Opts.OracleOut.c_str(), AR.Transcript.size());
    }
    R = std::move(AR.Final);
  } else {
    Session.generateConstraints(Seed);
    R = Session.solve();
  }
  printCacheStats(R, Opts);

  std::fprintf(stderr,
               "analyzed %zu files over %u job(s): %zu candidates, "
               "%zu constraints, solved in %.2fs (%d iterations)\n",
               R.NumFiles, R.JobsUsed, R.System.NumCandidates,
               R.System.Constraints.size(), R.SolveSeconds,
               R.Solve.Iterations);
  if (R.UsedFeedback)
    std::fprintf(stderr,
                 "feedback: %zu matched, %zu unmatched, %zu evidence "
                 "row(s), %zu propagated\n",
                 R.Feedback.Matched, R.Feedback.Unmatched,
                 R.Feedback.EvidenceRows, R.Feedback.PropagatedRows);
  if (Opts.SolverStats) {
    if (R.UsedCompiledSolver) {
      const solver::CompileStats &S = R.SolverStats;
      std::fprintf(stderr,
                   "solver: %s backend%s, %zu rows -> %zu after dedup "
                   "(%.2fx), %zu non-zeros, max multiplicity %zu\n",
                   solver::solverBackendName(R.Backend),
                   R.SimdActive ? " (avx2)" : "", S.RowsBefore,
                   S.RowsAfter, S.dedupRatio(), S.NonZeros,
                   S.MaxMultiplicity);
    } else {
      std::fprintf(stderr, "solver: legacy evaluator (no compilation)\n");
    }
    std::fprintf(stderr, "solver: %.3f ms/iteration over %d iteration(s)\n",
                 R.Solve.Iterations > 0
                     ? 1000.0 * R.SolveSeconds / R.Solve.Iterations
                     : 0.0,
                 R.Solve.Iterations);
  }

  // The spec is written even on a degraded run — it is valid for the
  // surviving corpus — but the exit code (2) flags the degradation.
  int HealthRc = reportHealth(R.Health);
  if (Opts.OutFile.empty())
    return writeOutput(Opts,
                       spec::writeLearnedSpec(R.Learned, Opts.Threshold))
               ? HealthRc
               : 1;
  spec::IOResult<size_t> Saved =
      spec::saveLearnedSpec(R.Learned, Opts.OutFile, Opts.Threshold);
  if (!Saved) {
    std::fprintf(stderr, "error: %s\n", Saved.Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", Opts.OutFile.c_str(),
               Saved.Value);
  return HealthRc;
}

int cmdAnalyze(const CliOptions &Opts) {
  bool Ok = false;
  spec::SeedSpec Seed = loadSeed(Opts, Ok);
  if (!Ok)
    return 1;
  std::vector<pysem::Project> Corpus = loadCorpus(Opts, Ok);
  if (!Ok || Corpus.empty()) {
    std::fprintf(stderr, "error: no input repositories\n");
    return 1;
  }

  spec::LearnedSpec Learned;
  bool HaveLearned = false;
  if (!Opts.SpecFile.empty()) {
    spec::IOResult<spec::LearnedSpec> Loaded =
        spec::loadLearnedSpec(Opts.SpecFile);
    for (const std::string &W : Loaded.Warnings)
      std::fprintf(stderr, "spec: %s\n", W.c_str());
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
      return 1;
    }
    Learned = std::move(Loaded.Value);
    HaveLearned = true;
  }

  propgraph::PropagationGraph Graph;
  for (const pysem::Project &P : Corpus)
    Graph.append(propgraph::buildProjectGraph(P));

  taint::RoleResolver Roles(&Seed.Spec, HaveLearned ? &Learned : nullptr,
                            Opts.Threshold);
  taint::TaintAnalyzer Analyzer(Graph);
  std::vector<taint::Violation> Reports = Analyzer.analyze(Roles);
  size_t Raw = Reports.size();
  if (Opts.Dedup)
    Reports = taint::dedupByRepPair(Graph, Reports);
  {
    metrics::Registry &Reg = metrics::Registry::global();
    if (Reg.enabled()) {
      Reg.gauge("taint.reports_raw").set(static_cast<double>(Raw));
      Reg.gauge("taint.reports_final")
          .set(static_cast<double>(Reports.size()));
    }
  }
  std::vector<double> Confidence = taint::rankViolations(
      Graph, Reports, &Seed.Spec, HaveLearned ? &Learned : nullptr,
      Opts.Threshold);

  if (Opts.Json)
    return writeOutput(Opts,
                       taint::reportsToJson(Graph, Reports, &Confidence) +
                           "\n")
               ? 0
               : 1;

  // Quote the source line of each path step, re-reading files on demand.
  std::unordered_map<std::string, std::vector<std::string>> FileLines;
  auto QuoteLine = [&](uint32_t FileIdx, uint32_t Line) -> std::string {
    const std::string &File = Graph.files()[FileIdx];
    auto It = FileLines.find(File);
    if (It == FileLines.end()) {
      std::vector<std::string> Lines;
      // Module paths are relative to their repository root; try each.
      for (const std::string &Dir : Opts.Paths) {
        if (std::optional<std::string> Text =
                pysem::readFile(Dir + "/" + File)) {
          Lines = splitString(*Text, '\n');
          break;
        }
      }
      It = FileLines.emplace(File, std::move(Lines)).first;
    }
    if (Line == 0 || Line > It->second.size())
      return std::string();
    return std::string(trim(It->second[Line - 1]));
  };

  std::string Out =
      formatString("%zu raw report(s), %zu after deduplication\n\n", Raw,
                   Reports.size());
  for (size_t I = 0; I < Reports.size() && I < Opts.Top; ++I) {
    Out += formatString("[%zu] confidence %.2f\n", I + 1, Confidence[I]);
    const taint::Violation &V = Reports[I];
    const propgraph::Event &Src = Graph.event(V.Source);
    const propgraph::Event &Snk = Graph.event(V.Sink);
    Out += formatString("unsanitized flow in %s:\n",
                        Graph.files()[V.FileIdx].c_str());
    Out += formatString("  source %s (line %u)\n", Src.primaryRep().c_str(),
                        Src.Loc.Line);
    Out += formatString("  sink   %s (line %u)\n", Snk.primaryRep().c_str(),
                        Snk.Loc.Line);
    Out += "  path:\n";
    for (propgraph::EventId Id : V.Path) {
      const propgraph::Event &E = Graph.event(Id);
      Out += formatString("    %s (line %u)\n", E.primaryRep().c_str(),
                          E.Loc.Line);
      std::string Quoted = QuoteLine(E.FileIdx, E.Loc.Line);
      if (!Quoted.empty())
        Out += formatString("        | %s\n", Quoted.c_str());
    }
    Out += '\n';
  }
  if (Reports.size() > Opts.Top)
    Out += formatString("... %zu more (raise --top to see them)\n",
                        Reports.size() - Opts.Top);
  return writeOutput(Opts, Out) ? 0 : 1;
}

int cmdExplain(const CliOptions &Opts) {
  if (Opts.ExplainRep.empty()) {
    std::fprintf(stderr, "error: explain needs --rep <representation>\n");
    return 1;
  }
  propgraph::Role Role;
  if (!service::roleFromName(Opts.ExplainRole, Role)) {
    std::fprintf(stderr, "error: --role must be source|sanitizer|sink\n");
    return 1;
  }

  bool Ok = false;
  spec::SeedSpec Seed = loadSeed(Opts, Ok);
  if (!Ok)
    return 1;
  std::vector<pysem::Project> Corpus = loadCorpus(Opts, Ok);
  if (!Ok || Corpus.empty()) {
    std::fprintf(stderr, "error: no input repositories\n");
    return 1;
  }

  infer::PipelineOptions PipelineOpts;
  PipelineOpts.Solve.MaxIterations = Opts.Iterations;
  PipelineOpts.Gen.RepCutoff = Opts.RepCutoff;
  PipelineOpts.Jobs = Opts.Jobs;
  if (!resolveBackend(Opts, PipelineOpts.Solve.Backend))
    return 1;
  PipelineOpts.Strict = Opts.Strict;
  PipelineOpts.DeadlineSeconds = Opts.DeadlineSeconds;

  infer::Session Session(PipelineOpts);
  CliProgress Progress;
  if (Opts.Progress)
    Session.setObserver(&Progress);
  if (!setupCache(Session, Opts))
    return 1;
  Session.addProjects(Corpus);
  Session.generateConstraints(Seed);
  infer::PipelineResult R = Session.solve();
  printCacheStats(R, Opts);
  int HealthRc = reportHealth(R.Health);

  // The same QueryResult + renderers serve the `seldond` query op, so the
  // CLI and the daemon cannot drift — a warm daemon answer is
  // byte-identical to this cold run.
  service::QueryResult Q = service::queryRep(R.System, R.Reps,
                                             Opts.ExplainRep, Role,
                                             R.Solve.X);
  if (Opts.Json)
    return writeOutput(Opts, service::renderQueryJson(Q) + "\n")
               ? HealthRc
               : 1;
  if (!Q.Found) {
    std::fprintf(stderr,
                 "'%s' has no %s variable (blacklisted, below the "
                 "frequency cutoff, or not a candidate)\n",
                 Opts.ExplainRep.c_str(), Opts.ExplainRole.c_str());
    return 1;
  }
  return writeOutput(Opts, service::renderQueryText(Q)) ? HealthRc : 1;
}

int cmdStats(const CliOptions &Opts) {
  bool Ok = false;
  std::vector<pysem::Project> Corpus = loadCorpus(Opts, Ok);
  if (!Ok || Corpus.empty()) {
    std::fprintf(stderr, "error: no input repositories\n");
    return 1;
  }
  propgraph::PropagationGraph Graph;
  for (const pysem::Project &P : Corpus)
    Graph.append(propgraph::buildProjectGraph(P));
  return writeOutput(Opts, propgraph::renderGraphStats(
                               propgraph::computeGraphStats(Graph)))
             ? 0
             : 1;
}

int cmdDiff(const CliOptions &Opts) {
  if (Opts.Paths.size() != 2) {
    std::fprintf(stderr, "error: diff expects OLD.spec NEW.spec\n");
    return 1;
  }
  spec::LearnedSpec Specs[2];
  for (int I = 0; I < 2; ++I) {
    spec::IOResult<spec::LearnedSpec> Loaded =
        spec::loadLearnedSpec(Opts.Paths[I]);
    for (const std::string &W : Loaded.Warnings)
      std::fprintf(stderr, "%s: %s\n", Opts.Paths[I].c_str(), W.c_str());
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
      return 1;
    }
    Specs[I] = std::move(Loaded.Value);
  }
  spec::SpecDiff Diff =
      spec::diffLearnedSpecs(Specs[0], Specs[1], Opts.Threshold);
  std::string Out = spec::renderSpecDiff(Diff);
  if (Out.empty()) {
    std::fprintf(stderr, "specifications agree at threshold %.2f\n",
                 Opts.Threshold);
    return 0;
  }
  if (!writeOutput(Opts, Out))
    return 1;
  // Non-zero exit on drift, so CI can gate on specification changes.
  return 2;
}

int cmdGraph(const CliOptions &Opts) {
  if (Opts.Paths.size() != 1) {
    std::fprintf(stderr, "error: graph expects exactly one .py file\n");
    return 1;
  }
  std::optional<std::string> Source = pysem::readFile(Opts.Paths[0]);
  if (!Source) {
    std::fprintf(stderr, "error: cannot read %s\n", Opts.Paths[0].c_str());
    return 1;
  }
  pysem::Project Proj("cli");
  const pysem::ModuleInfo &M = Proj.addModule(Opts.Paths[0], *Source);
  for (const pyast::ParseError &E : M.Errors)
    std::fprintf(stderr, "%s:%u:%u: %s\n", Opts.Paths[0].c_str(), E.Line,
                 E.Col, E.Message.c_str());
  propgraph::PropagationGraph Graph = propgraph::buildModuleGraph(Proj, M);

  if (!Opts.Dot)
    return writeOutput(Opts, propgraph::toText(Graph)) ? 0 : 1;

  bool SeedOk = false;
  spec::SeedSpec Seed = loadSeed(Opts, SeedOk);
  propgraph::DotOptions DotOpts;
  if (SeedOk) {
    taint::RoleResolver Roles(&Seed.Spec, nullptr, Opts.Threshold);
    taint::TaintAnalyzer Analyzer(Graph);
    DotOpts.Roles = Analyzer.resolveRoles(Roles);
  }
  return writeOutput(Opts, propgraph::toDot(Graph, DotOpts)) ? 0 : 1;
}

/// Renders / writes the metrics snapshot after a command ran. Returns
/// false if --metrics-out could not be written.
bool emitMetrics(const CliOptions &Opts) {
  if (!Opts.Metrics && Opts.MetricsOut.empty())
    return true;
  metrics::Registry &Reg = metrics::Registry::global();
  if (Opts.Metrics)
    std::fputs(Reg.renderText().c_str(), stderr);
  if (!Opts.MetricsOut.empty()) {
    std::ofstream Out(Opts.MetricsOut, std::ios::binary | std::ios::trunc);
    if (Out)
      Out << Reg.toJson();
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   Opts.MetricsOut.c_str());
      return false;
    }
    std::fprintf(stderr, "wrote metrics to %s\n", Opts.MetricsOut.c_str());
  }
  return true;
}

int runCommand(const std::string &Command, const CliOptions &Opts) {
  if (Command == "learn")
    return cmdLearn(Opts);
  if (Command == "analyze")
    return cmdAnalyze(Opts);
  if (Command == "graph")
    return cmdGraph(Opts);
  if (Command == "explain")
    return cmdExplain(Opts);
  if (Command == "diff")
    return cmdDiff(Opts);
  if (Command == "stats")
    return cmdStats(Opts);
  if (Command == "seed") {
    std::fputs(spec::paperSeedSpecText(), stdout);
    return 0;
  }
  if (Command == "--help" || Command == "-h" || Command == "help") {
    usage();
    return 0;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
  usage();
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    usage();
    return 1;
  }
  std::string Command = Argv[1];
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  // SELDON_FAULT arms the deterministic fault-injection points (testing
  // the degraded paths end to end); a malformed spec is a CLI error.
  std::string FaultError;
  if (!fault::configureFromEnv(&FaultError)) {
    std::fprintf(stderr, "error: SELDON_FAULT: %s\n", FaultError.c_str());
    return 1;
  }

  // Enable before any pipeline work so corpus loading (per-file parse
  // timings) is captured too. Metrics are write-only: enabling them never
  // changes any learned score or report.
  if (Opts.Metrics || !Opts.MetricsOut.empty())
    metrics::Registry::global().setEnabled(true);

  // Top-level failure boundary: anything the pipeline could not recover
  // from (strict mode, an expired constraint-generation deadline, I/O)
  // surfaces as a diagnostic and a failed exit code, never a crash. The
  // metrics snapshot is still emitted so a failed run can be post-mortemed.
  int Rc;
  try {
    Rc = runCommand(Command, Opts);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    Rc = 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown exception\n");
    Rc = 1;
  }
  if (!emitMetrics(Opts) && Rc == 0)
    Rc = 1;
  return Rc;
}
