# Empty dependencies file for explore_graph.
# This may be replaced when dependencies are built.
