//===- merlin/MerlinConstraints.h - Fig. 6 factor construction ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds Merlin's factor graph from a propagation graph (paper §6):
///
///   Fig. 6a  triple (src s, mid v, snk t) on a flow s ⇝ v ⇝ t: the
///            assignment (s=1, v=0, t=1) is penalized — a flow from a
///            source to a sink should pass a sanitizer;
///   Fig. 6b  edge v → w: (v.san=1, w.san=1) penalized — a sanitizer's
///            successor is unlikely to be a sanitizer;
///   Fig. 6c  edge v → w: (v.src=1, w.src=1) penalized;
///   Fig. 6d  edge v → w: (v.snk=1, w.snk=1) penalized;
///   priors   sources/sinks 0.5; a sanitizer candidate's prior is the
///            fraction of flows through it that start at a source
///            candidate and end at a sink candidate (§6.3);
///   seeds    hard unary factors pinning labeled candidates.
///
/// Variables are per (most-specific representation, role) as in the
/// adaptation of §6.2 — Merlin has no backoff.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_MERLIN_MERLINCONSTRAINTS_H
#define SELDON_MERLIN_MERLINCONSTRAINTS_H

#include "merlin/FactorGraph.h"
#include "propgraph/PropagationGraph.h"
#include "spec/SeedSpec.h"

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace merlin {

using propgraph::Role;

/// Factor-construction knobs.
struct MerlinGenOptions {
  /// Score of penalized assignments (all others score 1).
  double LowScore = 0.1;
  /// Cap on Fig. 6a triples per sanitizer-candidate anchor.
  size_t MaxTriplesPerAnchor = 100000;
};

/// The constructed model plus bookkeeping to map variables back to
/// representations.
struct MerlinModel {
  FactorGraph Graph;
  /// Variable of (representation, role), if created.
  std::unordered_map<std::string, std::array<int64_t, 3>> VarOf;
  /// Candidate counts per role (Tab. 2 "Candidates (src/san/sink)").
  std::array<size_t, 3> NumCandidates{0, 0, 0};

  int64_t lookup(const std::string &Rep, Role R) const {
    auto It = VarOf.find(Rep);
    if (It == VarOf.end())
      return -1;
    return It->second[static_cast<size_t>(R)];
  }
};

/// Builds the Fig. 6 factor graph over \p Graph (which the caller collapses
/// first for Merlin's original collapsed mode, §6.4).
MerlinModel buildMerlinModel(const propgraph::PropagationGraph &Graph,
                             const spec::SeedSpec &Seed,
                             const MerlinGenOptions &Opts =
                                 MerlinGenOptions());

} // namespace merlin
} // namespace seldon

#endif // SELDON_MERLIN_MERLINCONSTRAINTS_H
