# Empty dependencies file for seldon_propgraph.
# This may be replaced when dependencies are built.
