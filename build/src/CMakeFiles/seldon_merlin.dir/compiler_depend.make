# Empty compiler generated dependencies file for seldon_merlin.
# This may be replaced when dependencies are built.
