//===- constraints/ShardCodec.cpp - Binary shard serialization ------------===//

#include "constraints/ShardCodec.h"

#include "support/BinaryCodec.h"
#include "support/StrUtil.h"

#include <cstring>

using namespace seldon;
using namespace seldon::constraints;
using codec::ByteReader;
using codec::putFixed64;
using codec::putString;
using codec::putVarint;

namespace {

constexpr char Magic[4] = {'S', 'C', 'S', 'H'};

void putEventList(std::string &Out, const std::vector<ShardEventId> &Ids) {
  putVarint(Out, Ids.size());
  for (ShardEventId Id : Ids)
    putVarint(Out, Id);
}

std::string encodePayload(const ConstraintShard &Shard) {
  std::string Payload;
  putVarint(Payload, Shard.Strings.size());
  for (const std::string &Text : Shard.Strings)
    putString(Payload, Text);

  putVarint(Payload, Shard.Events.size());
  for (const ShardEvent &E : Shard.Events) {
    putVarint(Payload, E.Reps.size());
    for (ShardStrId S : E.Reps)
      putVarint(Payload, S);
  }

  putVarint(Payload, Shard.Files.size());
  for (const ShardFile &File : Shard.Files) {
    putVarint(Payload, File.SanAnchors.size());
    for (const ShardSanAnchor &A : File.SanAnchors) {
      putVarint(Payload, A.San);
      putEventList(Payload, A.SourcesBefore);
      putEventList(Payload, A.SinksAfter);
    }
    putVarint(Payload, File.SrcAnchors.size());
    for (const ShardSrcAnchor &A : File.SrcAnchors) {
      putVarint(Payload, A.Src);
      putVarint(Payload, A.Pairs.size());
      for (const ShardSrcPair &P : A.Pairs) {
        putVarint(Payload, P.Snk);
        putEventList(Payload, P.Mids);
      }
    }
  }
  return Payload;
}

/// Reads a list of event ids, validating each against \p NumEvents.
std::vector<ShardEventId> getEventList(ByteReader &Reader, size_t NumEvents,
                                       const char *What) {
  std::vector<ShardEventId> Out;
  uint64_t Count = Reader.getVarint(What);
  for (uint64_t I = 0; Reader.ok() && I < Count; ++I) {
    uint64_t Id = Reader.getVarint(What);
    if (!Reader.ok())
      break;
    if (Id >= NumEvents) {
      Reader.fail(formatString("%s event id %llu out of range (%zu "
                               "event(s))",
                               What, static_cast<unsigned long long>(Id),
                               NumEvents));
      break;
    }
    Out.push_back(static_cast<ShardEventId>(Id));
  }
  return Out;
}

} // namespace

std::string seldon::constraints::encodeShard(const ConstraintShard &Shard) {
  std::string Payload = encodePayload(Shard);
  std::string Out;
  Out.reserve(Payload.size() + 24);
  Out.append(Magic, sizeof(Magic));
  putVarint(Out, ShardCodecVersion);
  putFixed64(Out, codec::fnv1a64(Payload));
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

io::IOResult<ConstraintShard>
seldon::constraints::decodeShard(std::string_view Bytes) {
  using Result = io::IOResult<ConstraintShard>;
  ByteReader Reader(Bytes);

  if (Bytes.size() < sizeof(Magic))
    return Result::failure(formatString(
        "truncated shard header: %zu byte(s), need at least %zu",
        Bytes.size(), sizeof(Magic)));
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Result::failure("bad magic: not a serialized constraint shard");
  for (size_t I = 0; I < sizeof(Magic); ++I)
    Reader.getByte("magic");

  uint64_t Version = Reader.getVarint("format version");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (Version != ShardCodecVersion)
    return Result::failure(formatString(
        "unsupported shard format version %llu (this build reads "
        "version %u)",
        static_cast<unsigned long long>(Version), ShardCodecVersion));

  uint64_t StoredChecksum = Reader.getFixed64("payload checksum");
  uint64_t PayloadLen = Reader.getVarint("payload length");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (PayloadLen != Reader.remaining())
    return Result::failure(formatString(
        "payload size mismatch: header declares %llu byte(s), %zu "
        "follow (%s)",
        static_cast<unsigned long long>(PayloadLen), Reader.remaining(),
        PayloadLen > Reader.remaining() ? "truncated entry"
                                        : "trailing garbage"));
  uint64_t ActualChecksum = codec::fnv1a64(Bytes.substr(Reader.offset()));
  if (ActualChecksum != StoredChecksum)
    return Result::failure(formatString(
        "payload checksum mismatch: stored %016llx, computed %016llx "
        "(corrupt entry)",
        static_cast<unsigned long long>(StoredChecksum),
        static_cast<unsigned long long>(ActualChecksum)));

  // Integrity-checked; remaining failures are structural (a corrupt
  // encoder or version-1 layout drift) and still reported descriptively
  // rather than trusted.
  ConstraintShard Shard;

  uint64_t NumStrings = Reader.getVarint("string count");
  Shard.Strings.reserve(Reader.ok() ? NumStrings : 0);
  for (uint64_t I = 0; Reader.ok() && I < NumStrings; ++I) {
    std::string_view Text = Reader.getString("representation string");
    if (Reader.ok())
      Shard.Strings.emplace_back(Text);
  }

  uint64_t NumEvents = Reader.getVarint("event count");
  Shard.Events.reserve(Reader.ok() ? NumEvents : 0);
  for (uint64_t I = 0; Reader.ok() && I < NumEvents; ++I) {
    uint64_t NumReps = Reader.getVarint("event rep count");
    if (!Reader.ok())
      break;
    if (NumReps == 0) {
      Reader.fail("shard event with no representations");
      break;
    }
    ShardEvent E;
    E.Reps.reserve(NumReps);
    for (uint64_t R = 0; Reader.ok() && R < NumReps; ++R) {
      uint64_t S = Reader.getVarint("event rep string id");
      if (!Reader.ok())
        break;
      if (S >= Shard.Strings.size()) {
        Reader.fail(formatString(
            "rep string id %llu out of range (%zu string(s))",
            static_cast<unsigned long long>(S), Shard.Strings.size()));
        break;
      }
      E.Reps.push_back(static_cast<ShardStrId>(S));
    }
    if (Reader.ok())
      Shard.Events.push_back(std::move(E));
  }

  auto CheckEvent = [&](uint64_t Id, const char *What) -> bool {
    if (Id < Shard.Events.size())
      return true;
    Reader.fail(formatString("%s event id %llu out of range (%zu "
                             "event(s))",
                             What, static_cast<unsigned long long>(Id),
                             Shard.Events.size()));
    return false;
  };

  uint64_t NumFiles = Reader.getVarint("file count");
  Shard.Files.reserve(Reader.ok() ? NumFiles : 0);
  for (uint64_t F = 0; Reader.ok() && F < NumFiles; ++F) {
    ShardFile File;
    uint64_t NumSan = Reader.getVarint("sanitizer anchor count");
    for (uint64_t I = 0; Reader.ok() && I < NumSan; ++I) {
      ShardSanAnchor A;
      uint64_t San = Reader.getVarint("sanitizer anchor");
      if (!Reader.ok() || !CheckEvent(San, "sanitizer anchor"))
        break;
      A.San = static_cast<ShardEventId>(San);
      A.SourcesBefore =
          getEventList(Reader, Shard.Events.size(), "sources-before");
      A.SinksAfter =
          getEventList(Reader, Shard.Events.size(), "sinks-after");
      if (!Reader.ok())
        break;
      if (A.SourcesBefore.empty() && A.SinksAfter.empty()) {
        Reader.fail("empty sanitizer anchor");
        break;
      }
      File.SanAnchors.push_back(std::move(A));
    }
    uint64_t NumSrc = Reader.getVarint("source anchor count");
    for (uint64_t I = 0; Reader.ok() && I < NumSrc; ++I) {
      ShardSrcAnchor A;
      uint64_t Src = Reader.getVarint("source anchor");
      if (!Reader.ok() || !CheckEvent(Src, "source anchor"))
        break;
      A.Src = static_cast<ShardEventId>(Src);
      uint64_t NumPairs = Reader.getVarint("pair count");
      if (!Reader.ok())
        break;
      if (NumPairs == 0) {
        Reader.fail("source anchor with no pairs");
        break;
      }
      for (uint64_t P = 0; Reader.ok() && P < NumPairs; ++P) {
        ShardSrcPair Pair;
        uint64_t Snk = Reader.getVarint("pair sink");
        if (!Reader.ok() || !CheckEvent(Snk, "pair sink"))
          break;
        Pair.Snk = static_cast<ShardEventId>(Snk);
        Pair.Mids = getEventList(Reader, Shard.Events.size(), "pair mid");
        if (Reader.ok())
          A.Pairs.push_back(std::move(Pair));
      }
      if (Reader.ok())
        File.SrcAnchors.push_back(std::move(A));
    }
    if (Reader.ok())
      Shard.Files.push_back(std::move(File));
  }

  if (Reader.ok() && Reader.remaining() != 0)
    Reader.fail(formatString("%zu unconsumed payload byte(s)",
                             Reader.remaining()));
  if (!Reader.ok())
    return Result::failure(Reader.error());

  Result Out;
  Out.Value = std::move(Shard);
  return Out;
}
