//===- tests/cli_test.cpp - Integration tests for the seldon CLI ----------===//
//
// Drives the built `seldon` binary end-to-end on throwaway directories:
// learn -> spec file -> analyze -> JSON, graph dumps, explain, and the
// error paths. The binary path is injected by CMake.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

#ifndef SELDON_CLI_PATH
#error "SELDON_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int ExitCode = -1;
  std::string Output; // stdout + stderr combined.
};

CommandResult runCli(const std::string &Args) {
  std::string Command = std::string(SELDON_CLI_PATH) + " " + Args + " 2>&1";
  std::array<char, 4096> Buffer;
  CommandResult Result;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return Result;
  size_t N;
  while ((N = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
    Result.Output.append(Buffer.data(), N);
  int Status = pclose(Pipe);
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Result;
}

class CliTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("seldon_cli_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::create_directories(Root / "repo");
    write("repo/app.py",
          "from flask import request\n"
          "import flask\n"
          "\n"
          "def greet():\n"
          "    name = request.args.get('name')\n"
          "    flask.make_response('<h1>' + name + '</h1>')\n"
          "\n"
          "def safe():\n"
          "    name = request.args.get('name')\n"
          "    flask.make_response(flask.escape(name))\n");
  }

  void TearDown() override {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  void write(const std::string &Relative, const std::string &Content) {
    fs::path Path = Root / Relative;
    fs::create_directories(Path.parent_path());
    std::ofstream Out(Path);
    Out << Content;
  }

  std::string repo() const { return (Root / "repo").string(); }
  std::string path(const std::string &Relative) const {
    return (Root / Relative).string();
  }

  fs::path Root;
};

TEST_F(CliTest, AnalyzeFindsTheUnsanitizedFlow) {
  CommandResult R = runCli("analyze " + repo());
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("1 raw report(s)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("flask.request.args.get()"), std::string::npos);
  EXPECT_NE(R.Output.find("flask.make_response()"), std::string::npos);
}

TEST_F(CliTest, AnalyzeJsonOutput) {
  CommandResult R = runCli("analyze --json " + repo());
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("{\"reports\": [{\"file\": \"app.py\""),
            std::string::npos)
      << R.Output;
}

TEST_F(CliTest, LearnWritesSpecAndAnalyzeConsumesIt) {
  std::string Spec = path("learned.spec");
  CommandResult Learn =
      runCli("learn --cutoff 1 --iters 200 --out " + Spec + " " + repo());
  EXPECT_EQ(Learn.ExitCode, 0) << Learn.Output;
  std::ifstream In(Spec);
  ASSERT_TRUE(In.good());
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(Content.find("sanitizer"), std::string::npos) << Content;

  CommandResult Analyze =
      runCli("analyze --spec " + Spec + " " + repo());
  EXPECT_EQ(Analyze.ExitCode, 0) << Analyze.Output;
}

TEST_F(CliTest, GraphTextAndDot) {
  CommandResult Text = runCli("graph " + path("repo/app.py"));
  EXPECT_EQ(Text.ExitCode, 0);
  EXPECT_NE(Text.Output.find("graph events="), std::string::npos);
  CommandResult Dot = runCli("graph --dot " + path("repo/app.py"));
  EXPECT_EQ(Dot.ExitCode, 0);
  EXPECT_NE(Dot.Output.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.Output.find("lightcoral"), std::string::npos)
      << "seeded sink must be coloured";
}

TEST_F(CliTest, ExplainSeededSanitizer) {
  CommandResult R = runCli("explain --rep 'flask.escape()' --role sanitizer "
                           "--cutoff 1 --iters 200 " +
                           repo());
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("pinned to 1 by the seed"), std::string::npos);
  EXPECT_NE(R.Output.find("constraint"), std::string::npos);
}

TEST_F(CliTest, SeedCommandPrintsAppB) {
  CommandResult R = runCli("seed");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("o: flask.request.form.get()"), std::string::npos);
  EXPECT_NE(R.Output.find("b: *tensorflow*"), std::string::npos);
}

TEST_F(CliTest, ErrorPaths) {
  EXPECT_NE(runCli("").ExitCode, 0);
  EXPECT_NE(runCli("frobnicate").ExitCode, 0);
  EXPECT_NE(runCli("analyze /definitely/not/a/dir").ExitCode, 0);
  EXPECT_NE(runCli("explain " + repo()).ExitCode, 0) << "--rep is required";
  EXPECT_NE(runCli("learn --seed /missing/seed.txt " + repo()).ExitCode, 0);
  EXPECT_EQ(runCli("--help").ExitCode, 0);
}

TEST_F(CliTest, DiffSpecs) {
  write("old.spec", "source 0.5 web.read()\n");
  write("new.spec", "source 0.5 web.read()\nsink 0.6 db.exec()\n");
  CommandResult Same =
      runCli("diff " + path("old.spec") + " " + path("old.spec"));
  EXPECT_EQ(Same.ExitCode, 0);
  CommandResult Changed =
      runCli("diff " + path("old.spec") + " " + path("new.spec"));
  EXPECT_EQ(Changed.ExitCode, 2) << "drift must exit non-zero for CI";
  EXPECT_NE(Changed.Output.find("+ sink db.exec()"), std::string::npos);
  EXPECT_NE(runCli("diff " + path("old.spec")).ExitCode, 0)
      << "two files required";
}

TEST_F(CliTest, StatsCommand) {
  CommandResult R = runCli("stats " + repo());
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("events:"), std::string::npos);
  EXPECT_NE(R.Output.find("longest flow chain:"), std::string::npos);
}

TEST_F(CliTest, JobsValidation) {
  // --jobs used to go through atoi(): -1 silently became huge/garbage.
  CommandResult Negative = runCli("learn --jobs=-1 " + repo());
  EXPECT_NE(Negative.ExitCode, 0);
  EXPECT_NE(Negative.Output.find("non-negative integer"), std::string::npos)
      << Negative.Output;

  CommandResult Junk = runCli("learn --jobs banana " + repo());
  EXPECT_NE(Junk.ExitCode, 0);
  EXPECT_NE(Junk.Output.find("non-negative integer"), std::string::npos);

  CommandResult TrailingJunk = runCli("learn --jobs 2x " + repo());
  EXPECT_NE(TrailingJunk.ExitCode, 0);

  CommandResult Missing = runCli("learn --jobs");
  EXPECT_NE(Missing.ExitCode, 0);

  // Absurd values are clamped with a warning, not honored.
  CommandResult Huge =
      runCli("learn --jobs 1000000 --iters 50 " + repo());
  EXPECT_EQ(Huge.ExitCode, 0) << Huge.Output;
  EXPECT_NE(Huge.Output.find("clamping"), std::string::npos) << Huge.Output;

  CommandResult Ok = runCli("learn --jobs=2 --iters 50 " + repo());
  EXPECT_EQ(Ok.ExitCode, 0) << Ok.Output;
}

TEST_F(CliTest, MetricsJsonOutput) {
  std::string Out = path("metrics.json");
  CommandResult R = runCli("learn --iters 100 --metrics-out " + Out + " " +
                           repo());
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("wrote metrics to"), std::string::npos) << R.Output;

  std::ifstream In(Out);
  ASSERT_TRUE(In.good());
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Json.find("\"enabled\": true"), std::string::npos) << Json;
  for (const char *Key :
       {"\"session/parse\"", "\"session/constraints\"", "\"session/solve\"",
        "\"parse.files\"", "\"solve.iterations\"", "\"solver.rows_after\"",
        "\"solve.objective\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << "missing " << Key;
}

TEST_F(CliTest, MetricsTableOutput) {
  CommandResult R = runCli("analyze --metrics " + repo());
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("taint.analyses"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("parse.file_seconds"), std::string::npos)
      << R.Output;
}

TEST_F(CliTest, MetricsOutUnwritablePathFails) {
  CommandResult R = runCli(
      "analyze --metrics-out /definitely/not/a/dir/m.json " + repo());
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("cannot write metrics"), std::string::npos)
      << R.Output;
}

TEST_F(CliTest, CustomSeedFile) {
  write("custom.seed", "o: flask.request.args.get()\n");
  // Without a sink in the seed there is nothing to report.
  CommandResult R =
      runCli("analyze --seed " + path("custom.seed") + " " + repo());
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("0 raw report(s)"), std::string::npos) << R.Output;
}

} // namespace
