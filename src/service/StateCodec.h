//===- service/StateCodec.h - Durable-state binary formats -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two binary formats of seldond's durability layer (see
/// service/StateStore.h): the write-ahead journal and the state snapshot.
/// Both follow the tree-wide codec discipline of GraphCodec/ShardCodec —
/// magic + varint version + FNV-1a-64 payload checksum + varint length +
/// payload, strict ByteReader decoding, io::IOResult errors, never a
/// partially-populated value.
///
/// Journal file ("state.wal"):
///
///   "SWAL" varint(version)                          — file header
///   { fixed64(fnv1a64(payload)) varint(len) payload }*  — framed records
///
/// Each record payload is varint(seq) byte(op) plus the op's parameters —
/// everything needed to re-execute the mutating request deterministically
/// on replay. Because every append is one sequential write, a crash can
/// only ever leave a *prefix* of the final frame: scanJournal() therefore
/// classifies an incomplete trailing frame as a torn tail (recoverable by
/// truncation, keeping every complete record before it) and any *complete*
/// frame that fails its checksum or structural decode as interior
/// corruption (unrecoverable — the caller evicts the journal).
///
/// Snapshot file ("state-<seq>.ssn"): one framed payload carrying the
/// journal sequence number it covers, a fingerprint of the constraint
/// system it was solved against, the served solver result with the raw X
/// vector as fixed64 bit patterns (so a restored spec is byte-identical,
/// not round-tripped through decimal), and the cumulative feedback
/// verdict set.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_STATECODEC_H
#define SELDON_SERVICE_STATECODEC_H

#include "constraints/ConstraintSystem.h"
#include "constraints/Feedback.h"
#include "propgraph/RepTable.h"
#include "solver/Objective.h"
#include "support/IOResult.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seldon {
namespace service {

/// Bump on any layout change; decoders reject other versions.
constexpr uint32_t JournalCodecVersion = 1;
constexpr uint32_t SnapshotCodecVersion = 1;

/// The mutating operations the journal records.
enum class JournalOp : uint8_t {
  Feedback = 0, ///< A `feedback` request: verdict delta + solve knobs.
  Learn = 1,    ///< A `learn` request: re-solve (optionally reload) knobs.
  Abort = 2,    ///< The op with AbortedSeq failed after journaling; skip it.
};

/// One journal record: a sequence number plus the full parameter set of
/// the mutating request, sufficient to re-execute it on replay.
struct JournalRecord {
  uint64_t Seq = 0;
  JournalOp Op = JournalOp::Feedback;

  // Feedback op: the verdict delta and its weighting.
  std::vector<constraints::FeedbackEntry> Entries;
  constraints::FeedbackOptions FeedbackOpts;

  // Solve knobs shared by the feedback and learn ops.
  uint64_t Iters = 0;
  bool WarmStart = false;

  // Learn op.
  bool Reload = false;
  solver::SolverBackend Backend = solver::SolverBackend::Compiled;

  // Abort op: the journaled sequence number that must not be replayed.
  uint64_t AbortedSeq = 0;
};

/// The journal file header ("SWAL" + version) a fresh journal starts with.
std::string journalHeader();

/// Encodes \p Record as one framed journal entry (checksum + length +
/// payload), ready to append after journalHeader().
std::string encodeJournalRecord(const JournalRecord &Record);

/// What scanning a journal file found.
struct JournalScan {
  std::vector<JournalRecord> Records;
  /// Byte length of the valid prefix (header + complete frames). When
  /// Torn, truncating the file to this length removes the torn tail.
  size_t ValidBytes = 0;
  /// The final frame was incomplete (a crashed append); Records still
  /// holds every complete record before it.
  bool Torn = false;
};

/// Scans \p Bytes as a journal file. A torn *trailing* frame yields
/// success with Torn set; a bad header, version mismatch, checksum
/// failure, or structural decode failure of a complete frame is interior
/// corruption and yields a descriptive error with an empty value.
io::IOResult<JournalScan> scanJournal(std::string_view Bytes);

/// Everything a snapshot persists.
struct StateSnapshot {
  /// The highest journal sequence number whose effect the snapshot
  /// includes; replay skips records at or below it.
  uint64_t LastSeq = 0;
  /// systemFingerprint() of the constraint system Solve.X solves, checked
  /// against the rebuilt system before the X vector is installed.
  uint64_t Fingerprint = 0;
  /// The served solver result, X carried as exact bit patterns.
  solver::SolveResult Solve;
  /// The feedback weighting the solve that produced Solve ran with (the
  /// last feedback op's per-request weights, or the daemon default).
  /// Restoring must re-apply the evidence rows with these exact values
  /// for the served system — and query responses — to be byte-identical.
  constraints::FeedbackOptions FeedbackOpts;
  /// The cumulative feedback verdict set at LastSeq.
  std::vector<constraints::FeedbackEntry> Feedback;
};

/// Encodes \p Snapshot as one self-contained checksummed file image.
std::string encodeSnapshot(const StateSnapshot &Snapshot);

/// Decodes a snapshot file image; any truncation or corruption yields a
/// descriptive error with an empty value.
io::IOResult<StateSnapshot> decodeSnapshot(std::string_view Bytes);

/// Content fingerprint of the constraint system a solve ran against:
/// variable count, each variable's (representation string, role) in
/// variable order, constraint-row count, and candidate count. Two runs
/// over the same corpus/seed produce the same fingerprint at any --jobs;
/// a changed corpus (different variables) changes it, which recovery uses
/// to detect that a snapshot's X vector no longer matches the system.
uint64_t systemFingerprint(const constraints::ConstraintSystem &Sys,
                           const propgraph::RepTable &Reps);

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_STATECODEC_H
