//===- service/SocketServer.cpp - Unix-socket transport -------------------===//

#include "service/SocketServer.h"

#include "service/Protocol.h"
#include "service/Service.h"
#include "support/ThreadPool.h"

#include <cerrno>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace seldon;
using namespace seldon::service;

namespace {

/// Writes all of \p Data, riding out partial writes and EINTR.
/// MSG_NOSIGNAL: a client that hung up must surface as a failed write,
/// not a process-killing SIGPIPE.
bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N =
        ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

SocketServer::SocketServer(Service &Svc, ThreadPool &Pool,
                           std::string SocketPath)
    : Svc(Svc), Pool(Pool), Path(std::move(SocketPath)) {}

SocketServer::~SocketServer() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Path.c_str());
  }
}

bool SocketServer::listen(std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = Path + ": socket path too long for sockaddr_un";
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    if (errno == EADDRINUSE) {
      // A leftover socket file from a dead daemon is stale if nobody
      // answers a connect; reclaim it. A live listener is a hard error.
      int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      bool Live =
          Probe >= 0 &&
          ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                    sizeof(Addr)) == 0;
      if (Probe >= 0)
        ::close(Probe);
      if (!Live && ::unlink(Path.c_str()) == 0 &&
          ::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                 sizeof(Addr)) == 0) {
        // Reclaimed.
      } else {
        Error = Live ? (Path + ": another seldond is already listening")
                     : (Path + ": " + std::strerror(errno));
        ::close(ListenFd);
        ListenFd = -1;
        return false;
      }
    } else {
      Error = Path + ": " + std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }
  if (::listen(ListenFd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ::unlink(Path.c_str());
    ListenFd = -1;
    return false;
  }
  return true;
}

size_t SocketServer::run() {
  std::vector<std::thread> Connections;
  while (!Stopping.load(std::memory_order_acquire)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // stop() shut the listener down, or it failed hard.
    }
    Served.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> Lock(LiveMutex);
      LiveFds.insert(Fd);
    }
    Connections.emplace_back([this, Fd]() { serveConnection(Fd); });
  }
  // Drain: a connection parked in recv() on an idle client would block
  // the joins below forever; shutting the fd down makes its recv return
  // so the thread can exit. Runs in normal (non-signal) context — stop()
  // itself stays async-signal-safe.
  {
    std::lock_guard<std::mutex> Lock(LiveMutex);
    for (int Fd : LiveFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  for (std::thread &T : Connections)
    T.join();
  ::close(ListenFd);
  ::unlink(Path.c_str());
  ListenFd = -1;
  return Served.load(std::memory_order_relaxed);
}

void SocketServer::stop() {
  Stopping.store(true, std::memory_order_release);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
}

void SocketServer::serveConnection(int Fd) {
  std::string Buffer;
  char Chunk[65536];
  bool Open = true;
  while (Open) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      // Hard transport error (ECONNRESET and friends): whatever sits in
      // the buffer is an arbitrary truncation of a request the peer never
      // finished sending — drop it unanswered. Only a clean EOF below
      // promises the peer stopped at a deliberate point.
      break;
    }
    if (N == 0) {
      // EOF: a trailing unterminated line still gets an answer below.
      Open = false;
    } else {
      Buffer.append(Chunk, static_cast<size_t>(N));
    }

    size_t Start = 0;
    while (true) {
      size_t NL = Buffer.find('\n', Start);
      std::string Line;
      if (NL != std::string::npos) {
        Line = Buffer.substr(Start, NL - Start);
        Start = NL + 1;
      } else if (!Open && Start < Buffer.size()) {
        Line = Buffer.substr(Start);
        Start = Buffer.size();
      } else {
        break;
      }
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;

      // Admit before queueing so a flood becomes structured `overloaded`
      // errors instead of an unbounded pool backlog. The pool runs the
      // request; this thread waits so responses stay in request order on
      // this connection (other connections proceed concurrently).
      std::string Response;
      if (!Svc.tryAdmit()) {
        Response = Svc.overloadedResponse(Line);
      } else {
        std::future<void> Done = Pool.submit(
            [this, &Line, &Response]() { Response = Svc.handle(Line); });
        try {
          Done.get();
        } catch (...) {
          // Svc.handle never throws; this guards the pool plumbing.
          Response = renderErrorResponse(
              JsonValue::makeNull(), ErrorCode::Internal,
              "request execution failed");
        }
        Svc.release();
      }
      if (!writeAll(Fd, Response + "\n")) {
        Open = false;
        break;
      }
      if (Svc.shuttingDown()) {
        // Drain: answer nothing further on this connection and wake the
        // accept loop so run() can return.
        stop();
        Open = false;
        break;
      }
    }
    Buffer.erase(0, Start);

    // A newline-less flood must not buffer unboundedly: answer
    // `oversized` once and drop the connection (framing is lost).
    if (Open && Buffer.size() > Svc.options().MaxRequestBytes) {
      writeAll(Fd, renderErrorResponse(
                       JsonValue::makeNull(), ErrorCode::Oversized,
                       "unterminated request exceeds the frame cap") +
                       "\n");
      Open = false;
    }
  }
  {
    std::lock_guard<std::mutex> Lock(LiveMutex);
    LiveFds.erase(Fd);
  }
  ::close(Fd);
}

SocketClient::~SocketClient() { close(); }

bool SocketClient::connect(const std::string &SocketPath,
                           std::string &Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = SocketPath + ": socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    Fd = -1;
    return false;
  }
  return true;
}

bool SocketClient::sendLine(const std::string &Line) {
  return Fd >= 0 && writeAll(Fd, Line + "\n");
}

bool SocketClient::recvLine(std::string &Out) {
  if (Fd < 0)
    return false;
  while (true) {
    size_t NL = Buffer.find('\n');
    if (NL != std::string::npos) {
      Out = Buffer.substr(0, NL);
      Buffer.erase(0, NL + 1);
      return true;
    }
    char Chunk[65536];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      return false;
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

bool SocketClient::roundTrip(const std::string &Line,
                             std::string &Response) {
  return sendLine(Line) && recvLine(Response);
}

void SocketClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
