file(REMOVE_RECURSE
  "libseldon_eval.a"
)
