//===- bench/table5_seldon_precision.cpp - Paper Tab. 5 -------------------===//
//
// Regenerates Table 5: count and estimated precision of candidates
// predicted by Seldon, per role and overall. The paper reports
// 4384/1646/866 predictions (3.27% of 210,864 candidates) at 72/58/56%
// sampled precision (66.6% overall). We print both the paper's 50-sample
// estimate and the exact precision our ground-truth oracle permits.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());
  const auto &Learned = Run.Pipeline.Learned;
  const auto &Truth = Run.Data.Truth;
  const auto &Seed = Run.Data.Seed;
  size_t Candidates = Run.Pipeline.System.NumCandidates;

  std::cout << "=== Table 5: Count and estimated precision of candidates "
               "predicted by Seldon ===\n\n";
  TablePrinter Table({"Role", "# Predicted / # Candidates", "Fraction",
                      "Precision (50-sample)", "Precision (exact)"});

  size_t TotalPredicted = 0, TotalCorrectSampled = 0, TotalSampled = 0;
  size_t TotalCorrectExact = 0;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    RolePrecision Exact =
        exactPrecision(Learned, Truth, Seed, R, ScoreThreshold);
    auto Sample = sampledPredictions(Learned, Truth, Seed, R, ScoreThreshold,
                                     50, /*SampleSeed=*/7);
    size_t SampleCorrect = 0;
    for (const auto &S : Sample)
      SampleCorrect += S.Correct;

    TotalPredicted += Exact.Predicted;
    TotalCorrectExact += Exact.Correct;
    TotalSampled += Sample.size();
    TotalCorrectSampled += SampleCorrect;

    std::string RoleName = propgraph::roleName(R);
    RoleName[0] = static_cast<char>(std::toupper(RoleName[0]));
    Table.addRow(
        {RoleName + "s",
         formatString("%zu / %zu", Exact.Predicted, Candidates),
         percent(Candidates ? static_cast<double>(Exact.Predicted) /
                                  static_cast<double>(Candidates)
                            : 0.0),
         Sample.empty() ? "n/a"
                        : percent(static_cast<double>(SampleCorrect) /
                                  static_cast<double>(Sample.size())),
         percent(Exact.precision())});
  }
  Table.addRow(
      {"Any", formatString("%zu / %zu", TotalPredicted, Candidates),
       percent(Candidates ? static_cast<double>(TotalPredicted) /
                                static_cast<double>(Candidates)
                          : 0.0),
       TotalSampled == 0
           ? "n/a"
           : percent(static_cast<double>(TotalCorrectSampled) /
                     static_cast<double>(TotalSampled)),
       TotalPredicted == 0
           ? "n/a"
           : percent(static_cast<double>(TotalCorrectExact) /
                     static_cast<double>(TotalPredicted))});
  Table.print(std::cout);

  // §7.2 Q2 stability check: the paper repeats the estimate with 200
  // samples per role and observes a 1.1-point deviation.
  {
    size_t BigCorrect = 0, BigTotal = 0;
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
      auto Sample = sampledPredictions(Learned, Truth, Seed, R,
                                       ScoreThreshold, 200,
                                       /*SampleSeed=*/23);
      for (const auto &S : Sample)
        BigCorrect += S.Correct;
      BigTotal += Sample.size();
    }
    double Small = TotalSampled == 0
                       ? 0.0
                       : static_cast<double>(TotalCorrectSampled) /
                             static_cast<double>(TotalSampled);
    double Big = BigTotal == 0 ? 0.0
                               : static_cast<double>(BigCorrect) /
                                     static_cast<double>(BigTotal);
    std::cout << formatString(
        "\nStability (paper §7.2 Q2): 50-sample estimate %s vs 200-sample "
        "%s — deviation %.1f\npoints (paper: 1.1).\n",
        percent(Small).c_str(), percent(Big).c_str(),
        100.0 * std::abs(Small - Big));
  }

  std::cout << "\nPaper reference: 4384/1646/866 predictions "
               "(2.08/0.78/0.41% of candidates),\n"
               "precision 72.0/58.0/56.0%, overall 66.6%.\n";
  return 0;
}
