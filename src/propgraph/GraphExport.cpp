//===- propgraph/GraphExport.cpp - Graph serialization --------------------===//

#include "propgraph/GraphExport.h"

#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::propgraph;

namespace {

/// Escapes a string for a DOT double-quoted label.
std::string dotEscape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

const char *fillFor(RoleMask Mask) {
  // Precedence mirrors how the analyzer treats multi-role events: a
  // sanitizer intercepts flow, so its colour wins.
  if (maskHas(Mask, Role::Sanitizer))
    return "palegreen";
  if (maskHas(Mask, Role::Sink))
    return "lightcoral";
  if (maskHas(Mask, Role::Source))
    return "lightskyblue";
  return "white";
}

} // namespace

std::string seldon::propgraph::toDot(const PropagationGraph &Graph,
                                     const DotOptions &Opts) {
  std::string Out = "digraph \"" + dotEscape(Opts.Name) + "\" {\n";
  Out += "  rankdir=LR;\n  node [shape=box, style=filled];\n";
  for (const Event &E : Graph.events()) {
    RoleMask Mask = E.Id < Opts.Roles.size() ? Opts.Roles[E.Id] : 0;
    Out += formatString("  n%u [label=\"%s\", fillcolor=\"%s\"];\n", E.Id,
                        dotEscape(E.primaryRep()).c_str(), fillFor(Mask));
  }
  for (const Event &E : Graph.events())
    for (EventId To : Graph.successors(E.Id))
      Out += formatString("  n%u -> n%u;\n", E.Id, To);
  Out += "}\n";
  return Out;
}

std::string seldon::propgraph::toText(const PropagationGraph &Graph) {
  std::string Out;
  Out += formatString("graph events=%zu edges=%zu files=%zu\n",
                      Graph.numEvents(), Graph.numEdges(),
                      Graph.files().size());
  for (const Event &E : Graph.events()) {
    Out += formatString("event %u %s %s\n", E.Id, eventKindName(E.Kind),
                        E.primaryRep().c_str());
    for (size_t I = 1; I < E.Reps.size(); ++I)
      Out += formatString("  backoff %s\n", E.Reps[I].c_str());
  }
  for (const Event &E : Graph.events())
    for (EventId To : Graph.successors(E.Id))
      Out += formatString("edge %u %u\n", E.Id, To);
  return Out;
}
