//===- pyast/Parser.h - Recursive-descent Python parser ----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the Python subset used by the propagation
/// graph builder. Produces an AST allocated in a caller-provided AstContext.
///
/// On syntax errors the parser records a diagnostic, skips to the end of the
/// current logical line, and continues, so one malformed statement does not
/// discard a whole file (important when analyzing big code).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYAST_PARSER_H
#define SELDON_PYAST_PARSER_H

#include "pyast/Ast.h"
#include "pyast/Token.h"

#include <string>
#include <vector>

namespace seldon {
namespace pyast {

/// A parser diagnostic.
struct ParseError {
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
};

/// Parses a token stream (as produced by Lexer::lexAll) into a ModuleNode.
class Parser {
public:
  Parser(AstContext &Ctx, std::vector<Token> Tokens);

  /// Parses the whole token stream. Never returns null; a file that fails
  /// to parse entirely yields an empty module plus diagnostics.
  ModuleNode *parseModule();

  /// Diagnostics recorded during parsing.
  const std::vector<ParseError> &errors() const { return Errors; }

private:
  // Token-stream helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void errorHere(const std::string &Message);
  void synchronizeToLineEnd();
  SourceLoc locHere() const;

  // Statements.
  std::vector<Stmt *> parseStatementsUntil(TokenKind Terminator);
  Stmt *parseStatement();
  void parseSimpleStatementLine(std::vector<Stmt *> &Out);
  Stmt *parseSmallStatement();
  Stmt *parseExprLikeStatement();
  std::vector<Stmt *> parseBlock();
  Stmt *parseFunctionDef(std::vector<Expr *> Decorators);
  Stmt *parseClassDef(std::vector<Expr *> Decorators);
  Stmt *parseDecorated();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseFor();
  Stmt *parseWith();
  Stmt *parseTry();
  Stmt *parseImport();
  Stmt *parseImportFrom();
  std::vector<Param> parseParamList(TokenKind Terminator);

  // Expressions (precedence-ordered).
  Expr *parseTargetList();
  Expr *parseExprOrTupleNoAssign();
  Expr *parseStarOrTest();
  Expr *parseTest();
  Expr *parseLambda();
  Expr *parseOrTest();
  Expr *parseAndTest();
  Expr *parseNotTest();
  Expr *parseComparison();
  Expr *parseBitOr();
  Expr *parseBitXor();
  Expr *parseBitAnd();
  Expr *parseShift();
  Expr *parseArith();
  Expr *parseTerm();
  Expr *parseFactor();
  Expr *parsePower();
  Expr *parseAtomWithTrailers();
  Expr *parseAtom();
  Expr *parseSubscriptIndex();
  void parseCallArgs(std::vector<Expr *> &Args,
                     std::vector<KeywordArg> &Keywords);
  void parseFStringInterpolations(const std::string &Text, SourceLoc Loc,
                                  std::vector<Expr *> &Out);

  AstContext &Ctx;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<ParseError> Errors;

  /// Recursion-depth ceiling for the descent (statements and expressions
  /// share it). Pathologically nested input — e.g. ten thousand opening
  /// parentheses — would otherwise overflow the native stack; at the limit
  /// the parser emits a ParseError, resynchronizes to the end of the
  /// logical line, and substitutes a placeholder node, exactly like any
  /// other recovered syntax error.
  static constexpr int MaxNestingDepth = 256;
  int Depth = 0;
};

/// Convenience: lex and parse \p Source into \p Ctx, appending any lexer and
/// parser diagnostics to \p ErrorsOut (may be null to ignore).
ModuleNode *parseSource(AstContext &Ctx, std::string_view Source,
                        std::vector<ParseError> *ErrorsOut = nullptr);

} // namespace pyast
} // namespace seldon

#endif // SELDON_PYAST_PARSER_H
