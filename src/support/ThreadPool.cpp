//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace seldon;

namespace {
/// Pool whose workerLoop owns this thread, if any. parallelFor uses it to
/// detect re-entrant calls from its own workers.
thread_local const ThreadPool *ActivePool = nullptr;
} // namespace

unsigned ThreadPool::hardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = hardwareConcurrency();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  ActivePool = this;
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // Exceptions land in the task's future.
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Future = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Packaged));
  }
  WakeWorkers.notify_one();
  return Future;
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t, unsigned)> &Body) {
  if (N == 0)
    return;
  unsigned Tasks =
      static_cast<unsigned>(std::min<size_t>(numWorkers(), N));
  // Re-entrant call from one of this pool's own workers: the caller would
  // block on futures that only these workers can run, and with every
  // worker doing the same the pool deadlocks. Run inline instead — the
  // nested loop executes serially on the calling worker as Worker 0.
  if (ActivePool == this)
    Tasks = 1;
  if (Tasks <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I, 0);
    return;
  }

  std::atomic<size_t> Next{0};
  std::atomic<bool> Failed{false};
  std::vector<std::future<void>> Futures;
  Futures.reserve(Tasks);
  for (unsigned Worker = 0; Worker < Tasks; ++Worker) {
    Futures.push_back(submit([&, Worker] {
      size_t Index;
      while (!Failed.load(std::memory_order_relaxed) &&
             (Index = Next.fetch_add(1, std::memory_order_relaxed)) < N) {
        try {
          Body(Index, Worker);
        } catch (...) {
          Failed.store(true, std::memory_order_relaxed);
          throw; // Lands in this task's future.
        }
      }
    }));
  }

  // Wait for everything, then rethrow the first failure in task order so
  // the caller sees a deterministic exception.
  std::exception_ptr First;
  for (std::future<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}
