file(REMOVE_RECURSE
  "libseldon_solver.a"
)
