//===- tests/parser_test.cpp - Tests for the Python parser ----------------===//

#include "pyast/AstPrinter.h"
#include "pyast/Parser.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::pyast;

namespace {

struct Parsed {
  AstContext Ctx;
  ModuleNode *Module = nullptr;
  std::vector<ParseError> Errors;
};

std::unique_ptr<Parsed> parse(std::string_view Source) {
  auto P = std::make_unique<Parsed>();
  P->Module = parseSource(P->Ctx, Source, &P->Errors);
  return P;
}

std::unique_ptr<Parsed> parseClean(std::string_view Source) {
  auto P = parse(Source);
  EXPECT_TRUE(P->Errors.empty())
      << "unexpected diagnostics; first: "
      << (P->Errors.empty() ? "" : P->Errors.front().Message);
  return P;
}

TEST(ParserTest, EmptyModule) {
  auto P = parseClean("");
  EXPECT_TRUE(P->Module->Body.empty());
}

TEST(ParserTest, SimpleAssignment) {
  auto P = parseClean("x = f(1)\n");
  ASSERT_EQ(P->Module->Body.size(), 1u);
  auto *A = dyn_cast<AssignStmt>(P->Module->Body[0]);
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->Targets.size(), 1u);
  EXPECT_TRUE(isa<NameExpr>(A->Targets[0]));
  EXPECT_TRUE(isa<CallExpr>(A->Value));
}

TEST(ParserTest, ChainedAssignment) {
  auto P = parseClean("a = b = g()\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_EQ(A->Targets.size(), 2u);
}

TEST(ParserTest, AugmentedAssignment) {
  auto P = parseClean("total += price\n");
  auto *A = dyn_cast<AugAssignStmt>(P->Module->Body[0]);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Op, BinaryOp::Add);
}

TEST(ParserTest, AnnotatedAssignment) {
  auto P = parseClean("x: int = 3\ny: str\n");
  EXPECT_TRUE(isa<AnnAssignStmt>(P->Module->Body[0]));
  auto *Y = cast<AnnAssignStmt>(P->Module->Body[1]);
  EXPECT_EQ(Y->Value, nullptr);
}

TEST(ParserTest, AttributeChainRendering) {
  auto P = parseClean("v = request.files['f'].filename\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_EQ(exprToString(A->Value), "request.files['f'].filename");
}

TEST(ParserTest, CallWithKeywords) {
  auto P = parseClean("app.route('/media/', methods=['POST'])\n");
  auto *E = cast<ExprStmt>(P->Module->Body[0]);
  auto *C = cast<CallExpr>(E->Value);
  EXPECT_EQ(C->Args.size(), 1u);
  ASSERT_EQ(C->Keywords.size(), 1u);
  EXPECT_EQ(C->Keywords[0].Name, "methods");
}

TEST(ParserTest, StarArgsAndKwargsAtCallSite) {
  auto P = parseClean("f(*args, **kwargs)\n");
  auto *C = cast<CallExpr>(cast<ExprStmt>(P->Module->Body[0])->Value);
  ASSERT_EQ(C->Args.size(), 1u);
  EXPECT_TRUE(isa<StarredExpr>(C->Args[0]));
  ASSERT_EQ(C->Keywords.size(), 1u);
  EXPECT_TRUE(C->Keywords[0].Name.empty());
}

TEST(ParserTest, FunctionDef) {
  auto P = parseClean("def media(f, size=10, *args, **kw):\n"
                      "    return f\n");
  auto *F = dyn_cast<FunctionDefStmt>(P->Module->Body[0]);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Name, "media");
  ASSERT_EQ(F->Params.size(), 4u);
  EXPECT_EQ(F->Params[0].Name, "f");
  EXPECT_NE(F->Params[1].Default, nullptr);
  EXPECT_TRUE(F->Params[2].IsVarArgs);
  EXPECT_TRUE(F->Params[3].IsKwArgs);
  ASSERT_EQ(F->Body.size(), 1u);
  EXPECT_TRUE(isa<ReturnStmt>(F->Body[0]));
}

TEST(ParserTest, FunctionDefWithAnnotations) {
  auto P = parseClean("def f(a: int, b: str = 'x') -> bool:\n    pass\n");
  auto *F = cast<FunctionDefStmt>(P->Module->Body[0]);
  EXPECT_NE(F->Params[0].Annotation, nullptr);
  EXPECT_NE(F->Params[1].Default, nullptr);
  EXPECT_NE(F->ReturnAnnotation, nullptr);
}

TEST(ParserTest, DecoratedFunction) {
  auto P = parseClean("@app.route('/x')\n"
                      "@login_required\n"
                      "def view():\n"
                      "    pass\n");
  auto *F = cast<FunctionDefStmt>(P->Module->Body[0]);
  ASSERT_EQ(F->Decorators.size(), 2u);
  EXPECT_TRUE(isa<CallExpr>(F->Decorators[0]));
  EXPECT_TRUE(isa<NameExpr>(F->Decorators[1]));
}

TEST(ParserTest, ClassDefWithBasesAndMethods) {
  auto P = parseClean("class ESCPOSDriver(ThreadDriver):\n"
                      "    def status(self, eprint):\n"
                      "        self.receipt('<div>' + msg + '</div>')\n");
  auto *C = dyn_cast<ClassDefStmt>(P->Module->Body[0]);
  ASSERT_NE(C, nullptr);
  ASSERT_EQ(C->Bases.size(), 1u);
  ASSERT_EQ(C->Body.size(), 1u);
  auto *M = dyn_cast<FunctionDefStmt>(C->Body[0]);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Params.size(), 2u);
}

TEST(ParserTest, ClassWithKeywordBaseSkipsMetaclass) {
  auto P = parseClean("class A(B, metaclass=Meta):\n    pass\n");
  auto *C = cast<ClassDefStmt>(P->Module->Body[0]);
  EXPECT_EQ(C->Bases.size(), 1u);
}

TEST(ParserTest, IfElifElse) {
  auto P = parseClean("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
  auto *I = cast<IfStmt>(P->Module->Body[0]);
  ASSERT_EQ(I->Else.size(), 1u);
  auto *Elif = dyn_cast<IfStmt>(I->Else[0]);
  ASSERT_NE(Elif, nullptr);
  EXPECT_EQ(Elif->Else.size(), 1u);
}

TEST(ParserTest, WhileAndForLoops) {
  auto P = parseClean("while ok:\n    step()\nfor i in items:\n    use(i)\n");
  EXPECT_TRUE(isa<WhileStmt>(P->Module->Body[0]));
  auto *F = cast<ForStmt>(P->Module->Body[1]);
  EXPECT_TRUE(isa<NameExpr>(F->Target));
}

TEST(ParserTest, ForWithTupleTarget) {
  auto P = parseClean("for k, v in d.items():\n    use(k, v)\n");
  auto *F = cast<ForStmt>(P->Module->Body[0]);
  EXPECT_TRUE(isa<TupleExpr>(F->Target));
}

TEST(ParserTest, Imports) {
  auto P = parseClean("import os.path, sys as system\n"
                      "from flask import request, session as sess\n"
                      "from . import models\n"
                      "from werkzeug import *\n");
  auto *I = cast<ImportStmt>(P->Module->Body[0]);
  ASSERT_EQ(I->Names.size(), 2u);
  EXPECT_EQ(I->Names[0].Module, "os.path");
  EXPECT_EQ(I->Names[1].AsName, "system");
  auto *F = cast<ImportFromStmt>(P->Module->Body[1]);
  EXPECT_EQ(F->Module, "flask");
  ASSERT_EQ(F->Names.size(), 2u);
  EXPECT_EQ(F->Names[1].AsName, "sess");
  auto *Rel = cast<ImportFromStmt>(P->Module->Body[2]);
  EXPECT_EQ(Rel->Level, 1u);
  auto *Star = cast<ImportFromStmt>(P->Module->Body[3]);
  ASSERT_EQ(Star->Names.size(), 1u);
  EXPECT_EQ(Star->Names[0].Module, "*");
}

TEST(ParserTest, WithStatement) {
  auto P = parseClean("with open(p) as f, lock:\n    f.write(data)\n");
  auto *W = cast<WithStmt>(P->Module->Body[0]);
  ASSERT_EQ(W->Items.size(), 2u);
  EXPECT_NE(W->Items[0].OptionalVars, nullptr);
  EXPECT_EQ(W->Items[1].OptionalVars, nullptr);
}

TEST(ParserTest, TryExceptFinally) {
  auto P = parseClean("try:\n    risky()\n"
                      "except ValueError as e:\n    handle(e)\n"
                      "except:\n    pass\n"
                      "else:\n    ok()\n"
                      "finally:\n    cleanup()\n");
  auto *T = cast<TryStmt>(P->Module->Body[0]);
  ASSERT_EQ(T->Handlers.size(), 2u);
  EXPECT_EQ(T->Handlers[0].Name, "e");
  EXPECT_EQ(T->Handlers[1].Type, nullptr);
  EXPECT_EQ(T->OrElse.size(), 1u);
  EXPECT_EQ(T->Finally.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto P = parseClean("x = 1 + 2 * 3\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_EQ(exprToString(A->Value), "(1 + (2 * 3))");
}

TEST(ParserTest, PowerRightAssociative) {
  auto P = parseClean("x = 2 ** 3 ** 2\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_EQ(exprToString(A->Value), "(2 ** (3 ** 2))");
}

TEST(ParserTest, UnaryBindsLooserThanPower) {
  auto P = parseClean("x = -y ** 2\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_EQ(exprToString(A->Value), "-(y ** 2)");
}

TEST(ParserTest, BoolOpsAndComparisons) {
  auto P = parseClean("ok = a < b <= c and not d or e in f\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  auto *Or = dyn_cast<BoolOpExpr>(A->Value);
  ASSERT_NE(Or, nullptr);
  EXPECT_FALSE(Or->IsAnd);
  EXPECT_EQ(Or->Operands.size(), 2u);
}

TEST(ParserTest, ConditionalExpression) {
  auto P = parseClean("v = a if cond else b\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_TRUE(isa<ConditionalExpr>(A->Value));
}

TEST(ParserTest, LambdaExpression) {
  auto P = parseClean("f = lambda x, y=2: x + y\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  auto *L = dyn_cast<LambdaExpr>(A->Value);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Params.size(), 2u);
}

TEST(ParserTest, Displays) {
  auto P = parseClean("l = [a, b]\nt = (a, b)\ns = {a, b}\nd = {k: v}\n"
                      "e = []\net = ()\ned = {}\n");
  EXPECT_TRUE(isa<ListExpr>(cast<AssignStmt>(P->Module->Body[0])->Value));
  EXPECT_TRUE(isa<TupleExpr>(cast<AssignStmt>(P->Module->Body[1])->Value));
  EXPECT_TRUE(isa<SetExpr>(cast<AssignStmt>(P->Module->Body[2])->Value));
  EXPECT_TRUE(isa<DictExpr>(cast<AssignStmt>(P->Module->Body[3])->Value));
  EXPECT_TRUE(isa<ListExpr>(cast<AssignStmt>(P->Module->Body[4])->Value));
  EXPECT_TRUE(isa<TupleExpr>(cast<AssignStmt>(P->Module->Body[5])->Value));
  EXPECT_TRUE(isa<DictExpr>(cast<AssignStmt>(P->Module->Body[6])->Value));
}

TEST(ParserTest, BareTupleAndUnpacking) {
  auto P = parseClean("a, b = 1, 2\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_TRUE(isa<TupleExpr>(A->Targets[0]));
  EXPECT_TRUE(isa<TupleExpr>(A->Value));
}

TEST(ParserTest, Comprehensions) {
  auto P = parseClean("l = [f(x) for x in xs if p(x)]\n"
                      "s = {x for x in xs}\n"
                      "d = {k: v for k, v in items}\n"
                      "g = (y for y in ys)\n"
                      "total = sum(x * x for x in xs)\n");
  for (int I = 0; I < 4; ++I) {
    auto *A = cast<AssignStmt>(P->Module->Body[I]);
    EXPECT_TRUE(isa<ComprehensionExpr>(A->Value)) << "stmt " << I;
  }
  auto *Sum = cast<CallExpr>(cast<AssignStmt>(P->Module->Body[4])->Value);
  ASSERT_EQ(Sum->Args.size(), 1u);
  EXPECT_TRUE(isa<ComprehensionExpr>(Sum->Args[0]));
}

TEST(ParserTest, SubscriptSlices) {
  auto P = parseClean("a = x[1:2]\nb = x[:]\nc = x[::2]\nd = x[i, j]\n");
  auto *A = cast<AssignStmt>(P->Module->Body[0]);
  EXPECT_TRUE(isa<SliceExpr>(cast<SubscriptExpr>(A->Value)->Index));
  auto *D = cast<AssignStmt>(P->Module->Body[3]);
  EXPECT_TRUE(isa<TupleExpr>(cast<SubscriptExpr>(D->Value)->Index));
}

TEST(ParserTest, SemicolonSeparatedStatements) {
  auto P = parseClean("a = 1; b = 2\n");
  // Folded into a wrapper; both assignments must exist in the AST.
  std::string Dump = dumpAst(P->Module);
  EXPECT_NE(Dump.find("a"), std::string::npos);
  EXPECT_NE(Dump.find("b"), std::string::npos);
}

TEST(ParserTest, InlineSuite) {
  auto P = parseClean("if x: do()\n");
  auto *I = cast<IfStmt>(P->Module->Body[0]);
  ASSERT_EQ(I->Then.size(), 1u);
}

TEST(ParserTest, GlobalAndDel) {
  auto P = parseClean("global a, b\ndel c\n");
  auto *G = cast<GlobalStmt>(P->Module->Body[0]);
  EXPECT_EQ(G->Names.size(), 2u);
  EXPECT_TRUE(isa<DeleteStmt>(P->Module->Body[1]));
}

TEST(ParserTest, YieldStatementAndExpression) {
  auto P = parseClean("def gen():\n    yield 1\n    x = yield\n");
  auto *F = cast<FunctionDefStmt>(P->Module->Body[0]);
  ASSERT_EQ(F->Body.size(), 2u);
  EXPECT_TRUE(isa<YieldExpr>(cast<ExprStmt>(F->Body[0])->Value));
}

TEST(ParserTest, RecoversFromBadLine) {
  auto P = parse("x = 1\ny = = 2\nz = 3\n");
  EXPECT_FALSE(P->Errors.empty());
  // The two good statements must survive.
  int Assigns = 0;
  for (Stmt *S : P->Module->Body)
    Assigns += isa<AssignStmt>(S);
  EXPECT_GE(Assigns, 2);
}

TEST(ParserTest, ErrorHasLocation) {
  auto P = parse("def f(:\n    pass\n");
  ASSERT_FALSE(P->Errors.empty());
  EXPECT_EQ(P->Errors.front().Line, 1u);
}

TEST(ParserTest, PaperFig2aParses) {
  const char *Source =
      "from yak.web import app\n"
      "from flask import request\n"
      "from werkzeug import secure_filename\n"
      "import os\n"
      "\n"
      "blog_dir = app.config['PATH']\n"
      "\n"
      "@app.route('/media/', methods=['POST'])\n"
      "def media():\n"
      "    filename = request.files['f'].filename\n"
      "    filename = secure_filename(filename)\n"
      "    path = os.path.join(blog_dir, filename)\n"
      "    if not os.path.exists(path):\n"
      "        request.files['f'].save(path)\n";
  auto P = parseClean(Source);
  ASSERT_EQ(P->Module->Body.size(), 6u);
  auto *F = dyn_cast<FunctionDefStmt>(P->Module->Body[5]);
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Name, "media");
  EXPECT_EQ(F->Decorators.size(), 1u);
  EXPECT_EQ(F->Body.size(), 4u);
}

TEST(ParserTest, DeeplyNestedStructures) {
  std::string Source = "x = ";
  for (int I = 0; I < 30; ++I)
    Source += "f(";
  Source += "1";
  for (int I = 0; I < 30; ++I)
    Source += ")";
  Source += "\n";
  auto P = parseClean(Source);
  EXPECT_EQ(P->Module->Body.size(), 1u);
}

// Property-style sweep: every statement form round-trips through the dumper
// without crashing and without diagnostics.
class ParserSmokeTest : public ::testing::TestWithParam<const char *> {};

TEST_P(ParserSmokeTest, ParsesCleanAndDumps) {
  auto P = parseClean(GetParam());
  std::string Dump = dumpAst(P->Module);
  EXPECT_FALSE(Dump.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Statements, ParserSmokeTest,
    ::testing::Values(
        "pass\n", "break\n", "continue\n", "x = 1\n", "x += 1\n",
        "return\n", "raise\n", "raise ValueError('x')\n",
        "raise Wrapped() from err\n", "assert x, 'msg'\n",
        "f()\n", "x.y.z(1, 2)[3] = 4\n", "a = b = c = d\n",
        "x = a if b else c\n", "x = lambda: 0\n",
        "x = {**base, 'k': 1}\n", "print(*xs)\n",
        "def f():\n    '''docstring'''\n    pass\n",
        "class C:\n    pass\n",
        "class C(object):\n    x = 1\n    def m(self):\n        return self.x\n",
        "for i in range(10):\n    pass\nelse:\n    done()\n",
        "while True:\n    break\nelse:\n    pass\n",
        "x = y[1:2, ::3]\n", "x = (yield v)\n",
        "with a() as b:\n    pass\n",
        "if a:\n    pass\nelif b:\n    pass\n",
        "x = not a is not b\n", "x = v not in c\n",
        "t = a,\n", "x, = f()\n", "def f(*, kw=1):\n    pass\n"));

TEST(ParserTest, DeeplyNestedExpressionRecoversInsteadOfOverflowing) {
  // ~10k parenthesis levels: a naive recursive descent would blow the
  // native stack; the depth limit must turn this into an ordinary
  // recovered syntax error.
  constexpr int Depth = 10'000;
  std::string Source = "x = ";
  Source.append(Depth, '(');
  Source += "1";
  Source.append(Depth, ')');
  Source += "\n";

  auto P = parse(Source);
  ASSERT_NE(P->Module, nullptr);
  ASSERT_FALSE(P->Errors.empty());
  bool SawDepthError = false;
  for (const ParseError &E : P->Errors)
    if (E.Message.find("nesting too deep") != std::string::npos)
      SawDepthError = true;
  EXPECT_TRUE(SawDepthError)
      << "first diagnostic: " << P->Errors.front().Message;
}

TEST(ParserTest, DeeplyNestedStatementsRecoverInsteadOfOverflowing) {
  // 600 levels is comfortably past MaxNestingDepth while keeping the
  // (quadratic, indentation-dominated) source small.
  constexpr int Depth = 600;
  std::string Source;
  for (int I = 0; I < Depth; ++I) {
    Source.append(static_cast<size_t>(I) * 4, ' ');
    Source += "if x:\n";
  }
  Source.append(static_cast<size_t>(Depth) * 4, ' ');
  Source += "pass\n";

  auto P = parse(Source);
  ASSERT_NE(P->Module, nullptr);
  ASSERT_FALSE(P->Errors.empty());
}

TEST(ParserTest, NestingJustBelowTheLimitStaysClean) {
  constexpr int Depth = 200; // MaxNestingDepth is 256.
  std::string Source = "x = ";
  Source.append(Depth, '(');
  Source += "1";
  Source.append(Depth, ')');
  Source += "\n";
  auto P = parseClean(Source);
  ASSERT_EQ(P->Module->Body.size(), 1u);
}

} // namespace
