//===- pysem/QualifiedNames.h - Import-aware name resolution -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps local names to fully qualified dotted names through the module's
/// imports. This underlies the event representations Rep(v) of paper §3.2:
/// `from werkzeug import secure_filename as sf` makes a call `sf(x)` resolve
/// to the representation root `werkzeug.secure_filename`.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYSEM_QUALIFIEDNAMES_H
#define SELDON_PYSEM_QUALIFIEDNAMES_H

#include "pyast/Ast.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace seldon {
namespace pysem {

/// The import bindings of one module: local alias -> fully qualified prefix.
class ImportMap {
public:
  /// Scans all import statements (at any nesting depth) of \p Module, which
  /// has the dotted name \p ModuleName (used for relative imports).
  void build(const pyast::ModuleNode *Module, const std::string &ModuleName);

  /// Adds one binding explicitly (used by tests and the inliner).
  void bind(std::string LocalName, std::string QualifiedPrefix);

  /// Resolves the root identifier of a dotted expression: returns the
  /// qualified prefix bound to \p LocalName, or std::nullopt if the name is
  /// not import-bound.
  std::optional<std::string> resolveRoot(const std::string &LocalName) const;

  size_t size() const { return Bindings.size(); }

private:
  void scanStatements(const std::vector<pyast::Stmt *> &Body,
                      const std::string &ModuleName);

  std::unordered_map<std::string, std::string> Bindings;
};

/// Renders \p E as a dotted path if it is a pure chain of names and
/// attribute loads (e.g. `os.path.join`), resolving the root through
/// \p Imports. Returns an empty string for any other expression shape.
std::string resolveDottedName(const ImportMap &Imports, const pyast::Expr *E);

/// Computes the package prefix for a relative import of \p Level dots
/// inside \p ModuleName: stripRelative("a.b.c", 1) == "a.b".
std::string stripRelativeLevels(const std::string &ModuleName, unsigned Level);

} // namespace pysem
} // namespace seldon

#endif // SELDON_PYSEM_QUALIFIEDNAMES_H
