//===- constraints/ConstraintShard.cpp - Per-project constraints ----------===//

#include "constraints/ConstraintShard.h"

#include "support/Deadline.h"

#include <array>

#include <unordered_map>
#include <unordered_set>

using namespace seldon;
using namespace seldon::constraints;
using namespace seldon::propgraph;

size_t ConstraintShard::numAnchors() const {
  size_t N = 0;
  for (const ShardFile &F : Files)
    N += F.SanAnchors.size() + F.SrcAnchors.size();
  return N;
}

namespace {

/// Shard-local interning of strings and events during extraction.
class ShardInterner {
public:
  explicit ShardInterner(ConstraintShard &Shard) : Shard(Shard) {}

  ShardEventId internEvent(const Event &E) {
    auto It = EventIds.find(E.Id);
    if (It != EventIds.end())
      return It->second;
    ShardEventId Id = static_cast<ShardEventId>(Shard.Events.size());
    ShardEvent SE;
    SE.Reps.reserve(E.Reps.size());
    for (const std::string &Rep : E.Reps)
      SE.Reps.push_back(internString(Rep));
    Shard.Events.push_back(std::move(SE));
    EventIds.emplace(E.Id, Id);
    return Id;
  }

private:
  ShardStrId internString(const std::string &Text) {
    auto It = StringIds.find(Text);
    if (It != StringIds.end())
      return It->second;
    ShardStrId Id = static_cast<ShardStrId>(Shard.Strings.size());
    Shard.Strings.push_back(Text);
    StringIds.emplace(Text, Id);
    return Id;
  }

  ConstraintShard &Shard;
  std::unordered_map<EventId, ShardEventId> EventIds;
  std::unordered_map<std::string, ShardStrId> StringIds;
};

/// The per-file reachability pass of FileExtractor (ConstraintGen.cpp),
/// minus all filtering: candidates are taken from the role mask alone, and
/// every anchor is recorded with its full upstream/downstream sets so the
/// merge can filter later. Must mirror FileExtractor's traversal order
/// exactly — anchors and their member lists are stored in the order serial
/// generation visits them.
class ShardFileExtractor {
public:
  ShardFileExtractor(const PropagationGraph &Graph,
                     const std::vector<EventId> &Local,
                     ShardInterner &Interner, ShardFile &Out)
      : Graph(Graph), Local(Local), Interner(Interner), Out(Out) {}

  void run() {
    for (EventId Id : Local) {
      RoleMask Mask = Graph.event(Id).Candidates;
      if (maskHas(Mask, Role::Source))
        Sources.push_back(Id);
      if (maskHas(Mask, Role::Sanitizer))
        Sanitizers.push_back(Id);
      if (maskHas(Mask, Role::Sink))
        Sinks.push_back(Id);
    }
    extractSanitizerAnchored();
    extractSourceSinkPairs();
  }

private:
  void extractSanitizerAnchored() {
    for (EventId San : Sanitizers) {
      const std::unordered_set<EventId> &Fwd = forwardSet(San);
      std::unordered_set<EventId> Bwd = backwardSet(San);

      std::vector<EventId> SinksAfter = membersOf(Sinks, Fwd);
      std::vector<EventId> SourcesBefore = membersOf(Sources, Bwd);
      if (SinksAfter.empty() && SourcesBefore.empty())
        continue;

      ShardSanAnchor Anchor;
      Anchor.San = ref(San);
      Anchor.SourcesBefore = refAll(SourcesBefore);
      Anchor.SinksAfter = refAll(SinksAfter);
      Out.SanAnchors.push_back(std::move(Anchor));
    }
  }

  void extractSourceSinkPairs() {
    for (EventId Src : Sources) {
      const std::unordered_set<EventId> &Fwd = forwardSet(Src);
      std::vector<EventId> SinksAfter = membersOf(Sinks, Fwd);
      std::vector<EventId> SansAfter = membersOf(Sanitizers, Fwd);
      ShardSrcAnchor Anchor;
      for (EventId Snk : SinksAfter) {
        if (Snk == Src)
          continue;
        ShardSrcPair Pair;
        Pair.Snk = ref(Snk);
        for (EventId Mid : SansAfter) {
          if (Mid == Snk || Mid == Src)
            continue;
          if (forwardSet(Mid).count(Snk))
            Pair.Mids.push_back(ref(Mid));
        }
        Anchor.Pairs.push_back(std::move(Pair));
      }
      if (!Anchor.Pairs.empty()) {
        Anchor.Src = ref(Src);
        Out.SrcAnchors.push_back(std::move(Anchor));
      }
    }
  }

  ShardEventId ref(EventId Id) { return Interner.internEvent(Graph.event(Id)); }

  std::vector<ShardEventId> refAll(const std::vector<EventId> &Ids) {
    std::vector<ShardEventId> Out;
    Out.reserve(Ids.size());
    for (EventId Id : Ids)
      Out.push_back(ref(Id));
    return Out;
  }

  static std::vector<EventId>
  membersOf(const std::vector<EventId> &Candidates,
            const std::unordered_set<EventId> &Set) {
    std::vector<EventId> Out;
    for (EventId Id : Candidates)
      if (Set.count(Id))
        Out.push_back(Id);
    return Out;
  }

  const std::unordered_set<EventId> &forwardSet(EventId Id) {
    auto It = FwdCache.find(Id);
    if (It != FwdCache.end())
      return It->second;
    std::unordered_set<EventId> Set;
    for (EventId R : Graph.reachableFrom(Id))
      Set.insert(R);
    return FwdCache.emplace(Id, std::move(Set)).first->second;
  }

  std::unordered_set<EventId> backwardSet(EventId Id) const {
    std::unordered_set<EventId> Set;
    for (EventId R : Graph.reachingTo(Id))
      Set.insert(R);
    return Set;
  }

  const PropagationGraph &Graph;
  const std::vector<EventId> &Local;
  ShardInterner &Interner;
  ShardFile &Out;
  std::vector<EventId> Sources, Sanitizers, Sinks;
  std::unordered_map<EventId, std::unordered_set<EventId>> FwdCache;
};

} // namespace

ConstraintShard
seldon::constraints::extractShard(const PropagationGraph &Graph,
                                  uint32_t FileBegin, uint32_t FileEnd) {
  ConstraintShard Shard;
  if (FileEnd <= FileBegin)
    return Shard;
  Shard.Files.resize(FileEnd - FileBegin);

  // Group the slice's events by file in event-id order — the same grouping
  // generateConstraints uses, so anchor member lists come out in candidate
  // order.
  std::vector<std::vector<EventId>> ByFile(FileEnd - FileBegin);
  for (const Event &E : Graph.events())
    if (E.FileIdx >= FileBegin && E.FileIdx < FileEnd)
      ByFile[E.FileIdx - FileBegin].push_back(E.Id);

  ShardInterner Interner(Shard);
  for (size_t F = 0; F < ByFile.size(); ++F) {
    if (ByFile[F].empty())
      continue;
    ShardFileExtractor Extractor(Graph, ByFile[F], Interner, Shard.Files[F]);
    Extractor.run();
  }
  return Shard;
}

void seldon::constraints::appendShard(const ConstraintShard &Shard,
                                      const RepTable &Reps,
                                      const spec::SeedSpec &Seed,
                                      const GenOptions &Opts,
                                      ConstraintSystem &Sys) {
  // Resolve each shard event's surviving backoff options once: global
  // frequency cutoff (§4.3) + blacklist (§7.2), preserving the stored
  // most-to-least-specific order — exactly the filter generateConstraints
  // applies per event. An unknown representation (possible only with a
  // shard/graph mismatch; the cache key rules that out) is simply dropped,
  // like backoffOptions drops unknown strings.
  // Option strings recur across events (every `flask.request.*` read in a
  // file carries the same backoff spellings), so resolve each distinct
  // interned string once and fan the verdict out to the referencing
  // events.
  std::vector<RepId> StrRep(Shard.Strings.size());
  std::vector<uint8_t> StrKept(Shard.Strings.size(), 0);
  for (size_t S = 0; S < Shard.Strings.size(); ++S) {
    const std::string &Rep = Shard.Strings[S];
    RepId Id;
    if (!Reps.lookup(Rep, Id))
      continue;
    if (Reps.occurrences(Id) < Opts.RepCutoff)
      continue;
    if (Seed.isBlacklisted(Rep))
      continue;
    StrRep[S] = Id;
    StrKept[S] = 1;
  }
  std::vector<std::vector<RepId>> Kept(Shard.Events.size());
  for (size_t E = 0; E < Shard.Events.size(); ++E)
    for (ShardStrId S : Shard.Events[E].Reps)
      if (StrKept[S])
        Kept[E].push_back(StrRep[S]);

  auto Alive = [&](ShardEventId E) { return !Kept[E].empty(); };
  auto Surviving = [&](const std::vector<ShardEventId> &Ids) {
    std::vector<ShardEventId> Out;
    for (ShardEventId Id : Ids)
      if (Alive(Id))
        Out.push_back(Id);
    return Out;
  };
  // Mirrors FileExtractor::appendAvgTerms, with one crucial difference:
  // variables are interned straight into the global table. Events recur
  // across many constraints (a source anchor's option terms appear in
  // every pair it forms), so the term block for an (event, role) is built
  // once and appended by copy afterwards — the build happens lazily at
  // the block's first use, which is exactly where the uncached replay
  // would have issued its first varFor calls, so variable interning order
  // — and with it every id in the composed system — is unchanged.
  std::vector<std::array<std::vector<solver::Term>, propgraph::NumRoles>>
      TermCache(Shard.Events.size());
  std::vector<std::array<bool, propgraph::NumRoles>> CacheReady(
      Shard.Events.size(), {false, false, false});
  auto TermsOf = [&](ShardEventId E,
                     Role R) -> const std::vector<solver::Term> & {
    size_t RI = static_cast<size_t>(R);
    std::vector<solver::Term> &Block = TermCache[E][RI];
    if (!CacheReady[E][RI]) {
      const std::vector<RepId> &Options = Kept[E];
      float Coef = 1.0f / static_cast<float>(Options.size());
      Block.reserve(Options.size());
      for (RepId Rep : Options)
        Block.push_back({Sys.Vars.varFor(Rep, R), Coef});
      CacheReady[E][RI] = true;
    }
    return Block;
  };
  auto AppendAvg = [&](std::vector<solver::Term> &Terms, ShardEventId E,
                       Role R) {
    const std::vector<solver::Term> &Block = TermsOf(E, R);
    Terms.insert(Terms.end(), Block.begin(), Block.end());
  };
  auto SumTerms = [&](const std::vector<ShardEventId> &Ids, Role R) {
    std::vector<solver::Term> Terms;
    for (ShardEventId Id : Ids)
      AppendAvg(Terms, Id, R);
    return Terms;
  };

  for (const ShardFile &File : Shard.Files) {
    // Fig. 4a / 4b — an anchor whose sanitizer was filtered out never
    // entered the serial candidate list, so it contributes nothing.
    for (const ShardSanAnchor &Anchor : File.SanAnchors) {
      if (!Alive(Anchor.San))
        continue;
      std::vector<ShardEventId> SinksAfter = Surviving(Anchor.SinksAfter);
      std::vector<ShardEventId> SourcesBefore =
          Surviving(Anchor.SourcesBefore);
      if (SinksAfter.empty() && SourcesBefore.empty())
        continue;

      std::vector<solver::Term> SourceSum =
          SumTerms(SourcesBefore, Role::Source);
      size_t Pairs = 0;
      for (ShardEventId Snk : SinksAfter) {
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        AppendAvg(LC.Lhs, Anchor.San, Role::Sanitizer);
        AppendAvg(LC.Lhs, Snk, Role::Sink);
        LC.Rhs = SourceSum;
        LC.C = Opts.C;
        Sys.Constraints.push_back(std::move(LC));
      }

      std::vector<solver::Term> SinkSum = SumTerms(SinksAfter, Role::Sink);
      Pairs = 0;
      for (ShardEventId Src : SourcesBefore) {
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        AppendAvg(LC.Lhs, Src, Role::Source);
        AppendAvg(LC.Lhs, Anchor.San, Role::Sanitizer);
        LC.Rhs = SinkSum;
        LC.C = Opts.C;
        Sys.Constraints.push_back(std::move(LC));
      }
    }

    // Fig. 4c — the pair cap counts surviving sinks only; stored pairs
    // already exclude Snk == Src (serial skips those before counting).
    for (const ShardSrcAnchor &Anchor : File.SrcAnchors) {
      if (!Alive(Anchor.Src))
        continue;
      size_t Pairs = 0;
      for (const ShardSrcPair &Pair : Anchor.Pairs) {
        if (!Alive(Pair.Snk))
          continue;
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        AppendAvg(LC.Lhs, Anchor.Src, Role::Source);
        AppendAvg(LC.Lhs, Pair.Snk, Role::Sink);
        for (ShardEventId Mid : Pair.Mids)
          if (Alive(Mid))
            AppendAvg(LC.Rhs, Mid, Role::Sanitizer);
        LC.C = Opts.C;
        Sys.Constraints.push_back(std::move(LC));
      }
    }
  }
}

ConstraintSystem seldon::constraints::composeConstraints(
    const PropagationGraph &Graph, const RepTable &Reps,
    const spec::SeedSpec &Seed,
    const std::vector<const ConstraintShard *> &Shards,
    const GenOptions &Opts, ThreadPool *Pool, const Deadline *StopAt) {
  ConstraintSystem Sys = prepareSystem(Graph, Reps, Seed, Opts, Pool);
  for (const ConstraintShard *Shard : Shards) {
    // All-or-nothing, like generation: a truncated composition would
    // change the learned scores silently.
    if (StopAt && StopAt->expired())
      throw DeadlineError("deadline expired during constraint composition");
    if (Shard)
      appendShard(*Shard, Reps, Seed, Opts, Sys);
  }
  return Sys;
}
