//===- constraints/VarTable.cpp - (rep, role) -> variable ids -------------===//

#include "constraints/VarTable.h"

using namespace seldon;
using namespace seldon::constraints;

VarId VarTable::varFor(RepId Rep, Role R) {
  uint64_t Key = keyOf(Rep, R);
  auto It = Ids.find(Key);
  if (It != Ids.end())
    return It->second;
  VarId V = static_cast<VarId>(Infos.size());
  Ids.emplace(Key, V);
  Infos.push_back({Rep, R});
  return V;
}

bool VarTable::lookup(RepId Rep, Role R, VarId &Out) const {
  auto It = Ids.find(keyOf(Rep, R));
  if (It == Ids.end())
    return false;
  Out = It->second;
  return true;
}
