//===- solver/SimdObjective.cpp - Blocked SIMD solver kernel --------------===//

#include "solver/SimdObjective.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <numeric>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SELDON_X86 1
#else
#define SELDON_X86 0
#endif

using namespace seldon;
using namespace seldon::solver;

namespace {

// The value-pass kernels. All four variants accumulate each lane's row in
// the original CSR term order with separate mul and add (no FMA), so every
// variant computes bit-identical per-row values for its precision: the
// AVX2 kernels round each lane exactly like the corresponding scalar loop.
// The fp64 variants also form the weighted hinge Weight·max(V, 0) — a max
// followed by a separate multiply, the same two operations the compiled
// row loop issues for a violated row — so the epilogue needs only H.

void valuePassF64Scalar(size_t BlockBegin, size_t BlockEnd,
                        const size_t *Off, const uint32_t *Width,
                        const uint32_t *Rows, const double *NegC,
                        const double *Wt, const uint32_t *Idx,
                        const double *Val, const double *X, uint32_t Sentinel,
                        double *RowHinge) {
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const size_t O = Off[B];
    const uint32_t W = Width[B];
    double Acc[4];
    for (int L = 0; L < 4; ++L)
      Acc[L] = NegC[4 * B + L];
    for (uint32_t J = 0; J < W; ++J)
      for (int L = 0; L < 4; ++L)
        Acc[L] += Val[O + 4 * J + L] * X[Idx[O + 4 * J + L]];
    for (int L = 0; L < 4; ++L) {
      const uint32_t R = Rows[4 * B + L];
      // (Acc > 0 ? Acc : +0.0) mirrors vmaxpd's exact zero handling.
      if (R != Sentinel)
        RowHinge[R] = Wt[4 * B + L] * (Acc[L] > 0.0 ? Acc[L] : 0.0);
    }
  }
}

void valuePassF32Scalar(size_t BlockBegin, size_t BlockEnd,
                        const size_t *Off, const uint32_t *Width,
                        const uint32_t *Rows, const float *NegC,
                        const uint32_t *Idx, const float *Val,
                        const float *X, uint32_t Sentinel, float *RowVal) {
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const size_t O = Off[B];
    const uint32_t W = Width[B];
    float Acc[8];
    for (int L = 0; L < 8; ++L)
      Acc[L] = NegC[8 * B + L];
    for (uint32_t J = 0; J < W; ++J)
      for (int L = 0; L < 8; ++L)
        Acc[L] += Val[O + 8 * J + L] * X[Idx[O + 8 * J + L]];
    for (int L = 0; L < 8; ++L) {
      const uint32_t R = Rows[8 * B + L];
      if (R != Sentinel)
        RowVal[R] = Acc[L];
    }
  }
}

#if SELDON_X86

__attribute__((target("avx2")))
void valuePassF64Avx2(size_t BlockBegin, size_t BlockEnd, const size_t *Off,
                      const uint32_t *Width, const uint32_t *Rows,
                      const double *NegC, const double *Wt,
                      const uint32_t *Idx, const double *Val, const double *X,
                      uint32_t Sentinel, double *RowHinge) {
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const uint32_t W = Width[B];
    const uint32_t *IdxP = Idx + Off[B];
    const double *ValP = Val + Off[B];
    __m256d Acc = _mm256_loadu_pd(NegC + 4 * B);
    for (uint32_t J = 0; J < W; ++J) {
      __m128i I = _mm_loadu_si128(
          reinterpret_cast<const __m128i *>(IdxP + 4 * J));
      __m256d Xv = _mm256_i32gather_pd(X, I, 8);
      __m256d Cv = _mm256_loadu_pd(ValP + 4 * J);
      Acc = _mm256_add_pd(Acc, _mm256_mul_pd(Cv, Xv));
    }
    __m256d Wv = _mm256_loadu_pd(Wt + 4 * B);
    __m256d Hv =
        _mm256_mul_pd(Wv, _mm256_max_pd(Acc, _mm256_setzero_pd()));
    alignas(32) double Lane[4];
    _mm256_store_pd(Lane, Hv);
    for (int L = 0; L < 4; ++L) {
      const uint32_t R = Rows[4 * B + L];
      if (R != Sentinel)
        RowHinge[R] = Lane[L];
    }
  }
}

__attribute__((target("avx2")))
void valuePassF32Avx2(size_t BlockBegin, size_t BlockEnd, const size_t *Off,
                      const uint32_t *Width, const uint32_t *Rows,
                      const float *NegC, const uint32_t *Idx,
                      const float *Val, const float *X, uint32_t Sentinel,
                      float *RowVal) {
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const uint32_t W = Width[B];
    const uint32_t *IdxP = Idx + Off[B];
    const float *ValP = Val + Off[B];
    __m256 Acc = _mm256_loadu_ps(NegC + 8 * B);
    for (uint32_t J = 0; J < W; ++J) {
      __m256i I = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(IdxP + 8 * J));
      __m256 Xv = _mm256_i32gather_ps(X, I, 4);
      __m256 Cv = _mm256_loadu_ps(ValP + 8 * J);
      Acc = _mm256_add_ps(Acc, _mm256_mul_ps(Cv, Xv));
    }
    alignas(32) float Lane[8];
    _mm256_store_ps(Lane, Acc);
    for (int L = 0; L < 8; ++L) {
      const uint32_t R = Rows[8 * B + L];
      if (R != Sentinel)
        RowVal[R] = Lane[L];
    }
  }
}

// The AVX-512 tier: same per-lane arithmetic at twice the width, with
// masked scatter stores replacing the scalar sentinel branch. Rows within
// a block are distinct, so the row-value scatter never conflicts.

__attribute__((target("avx512f,avx512vl")))
void valuePassF64Avx512(size_t BlockBegin, size_t BlockEnd,
                        const size_t *Off, const uint32_t *Width,
                        const uint32_t *Rows, const double *NegC,
                        const double *Wt, const uint32_t *Idx,
                        const double *Val, const double *X, uint32_t Sentinel,
                        double *RowHinge) {
  const __m256i Sent = _mm256_set1_epi32(static_cast<int>(Sentinel));
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const uint32_t W = Width[B];
    const uint32_t *IdxP = Idx + Off[B];
    const double *ValP = Val + Off[B];
    __m512d Acc = _mm512_loadu_pd(NegC + 8 * B);
    for (uint32_t J = 0; J < W; ++J) {
      __m256i I = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(IdxP + 8 * J));
      __m512d Xv = _mm512_i32gather_pd(I, X, 8);
      __m512d Cv = _mm512_loadu_pd(ValP + 8 * J);
      Acc = _mm512_add_pd(Acc, _mm512_mul_pd(Cv, Xv));
    }
    __m512d Wv = _mm512_loadu_pd(Wt + 8 * B);
    __m512d Hv =
        _mm512_mul_pd(Wv, _mm512_max_pd(Acc, _mm512_setzero_pd()));
    __m256i R = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Rows + 8 * B));
    __mmask8 M = _mm256_cmpneq_epu32_mask(R, Sent);
    _mm512_mask_i32scatter_pd(RowHinge, M, R, Hv, 8);
  }
}

__attribute__((target("avx512f")))
void valuePassF32Avx512(size_t BlockBegin, size_t BlockEnd,
                        const size_t *Off, const uint32_t *Width,
                        const uint32_t *Rows, const float *NegC,
                        const uint32_t *Idx, const float *Val, const float *X,
                        uint32_t Sentinel, float *RowVal) {
  const __m512i Sent = _mm512_set1_epi32(static_cast<int>(Sentinel));
  for (size_t B = BlockBegin; B < BlockEnd; ++B) {
    const uint32_t W = Width[B];
    const uint32_t *IdxP = Idx + Off[B];
    const float *ValP = Val + Off[B];
    __m512 Acc = _mm512_loadu_ps(NegC + 16 * B);
    for (uint32_t J = 0; J < W; ++J) {
      __m512i I = _mm512_loadu_si512(IdxP + 16 * J);
      __m512 Xv = _mm512_i32gather_ps(I, X, 4);
      __m512 Cv = _mm512_loadu_ps(ValP + 16 * J);
      Acc = _mm512_add_ps(Acc, _mm512_mul_ps(Cv, Xv));
    }
    __m512i R = _mm512_loadu_si512(Rows + 16 * B);
    __mmask16 M = _mm512_cmpneq_epu32_mask(R, Sent);
    _mm512_mask_i32scatter_ps(RowVal, M, R, Acc, 4);
  }
}

// Order-preserving violated-row compaction for the epilogue: the masked
// compress emits exactly the rows with H > 0 (V > 0 in fp32), in
// ascending row order — the same set and sequence the branchy scalar
// loop visits, just without the per-row branch.

__attribute__((target("avx512f,avx512vl")))
size_t compressViolatedF64(const double *H, size_t Begin, size_t End,
                           double *HOut, uint32_t *ROut) {
  size_t N = 0;
  size_t R = Begin;
  __m256i Idx = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(Begin)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i Step = _mm256_set1_epi32(8);
  const __m512d Zero = _mm512_setzero_pd();
  for (; R + 8 <= End; R += 8) {
    __m512d Hv = _mm512_loadu_pd(H + R);
    __mmask8 M = _mm512_cmp_pd_mask(Hv, Zero, _CMP_GT_OQ);
    _mm512_mask_compressstoreu_pd(HOut + N, M, Hv);
    _mm256_mask_compressstoreu_epi32(ROut + N, M, Idx);
    N += static_cast<unsigned>(__builtin_popcount(M));
    Idx = _mm256_add_epi32(Idx, Step);
  }
  for (; R < End; ++R)
    if (H[R] > 0.0) {
      HOut[N] = H[R];
      ROut[N] = static_cast<uint32_t>(R);
      ++N;
    }
  return N;
}

__attribute__((target("avx512f")))
size_t compressViolatedF32(const float *V, size_t Begin, size_t End,
                           float *VOut, uint32_t *ROut) {
  size_t N = 0;
  size_t R = Begin;
  __m512i Idx = _mm512_add_epi32(
      _mm512_set1_epi32(static_cast<int>(Begin)),
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                        15));
  const __m512i Step = _mm512_set1_epi32(16);
  const __m512 Zero = _mm512_setzero_ps();
  for (; R + 16 <= End; R += 16) {
    __m512 Vv = _mm512_loadu_ps(V + R);
    __mmask16 M = _mm512_cmp_ps_mask(Vv, Zero, _CMP_GT_OQ);
    _mm512_mask_compressstoreu_ps(VOut + N, M, Vv);
    _mm512_mask_compressstoreu_epi32(ROut + N, M, Idx);
    N += static_cast<unsigned>(__builtin_popcount(M));
    Idx = _mm512_add_epi32(Idx, Step);
  }
  for (; R < End; ++R)
    if (V[R] > 0.0f) {
      VOut[N] = V[R];
      ROut[N] = static_cast<uint32_t>(R);
      ++N;
    }
  return N;
}

#endif // SELDON_X86

} // namespace

bool SimdObjective::simdSupported() {
  // SELDON_SIMD=off|0|scalar forces the scalar fallback — the dispatch
  // seam the fallback tests exercise on AVX2 hosts.
  if (const char *Env = std::getenv("SELDON_SIMD"))
    if (!std::strcmp(Env, "off") || !std::strcmp(Env, "0") ||
        !std::strcmp(Env, "scalar"))
      return false;
#if SELDON_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool SimdObjective::avx512Supported() {
  // SELDON_SIMD=avx2 caps the dispatch at the 256-bit kernels — the
  // tier-equivalence tests exercise this on AVX-512 hosts.
  if (const char *Env = std::getenv("SELDON_SIMD"))
    if (!std::strcmp(Env, "avx2"))
      return false;
#if SELDON_X86
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

SimdObjective::SimdObjective(size_t NumVars,
                             const std::vector<LinearConstraint> &Constraints,
                             double Lambda, SimdPrecision Precision)
    : Inner(NumVars, Constraints, Lambda), Precision(Precision),
      UseAvx2(simdSupported()), UseAvx512(UseAvx2 && avx512Supported()) {
  buildBlocks();
}

SimdObjective SimdObjective::compile(const Objective &Obj,
                                     SimdPrecision Precision) {
  SimdObjective Compiled(Obj.numVars(), Obj.constraints(), Obj.lambda(),
                         Precision);
  const std::vector<uint8_t> &Mask = Obj.pinnedMask();
  const std::vector<double> &Values = Obj.pinnedValues();
  for (uint32_t V = 0; V < Obj.numVars(); ++V)
    if (Mask[V])
      Compiled.Inner.pin(V, Values[V]);
  return Compiled;
}

void SimdObjective::buildBlocks() {
  const std::vector<uint32_t> &RB = Inner.rowBegin();
  const std::vector<uint32_t> &VI = Inner.varIdx();
  const std::vector<double> &CO = Inner.coef();
  const std::vector<double> &RC = Inner.rowConstant();
  const std::vector<double> &WT = Inner.weight();
  const size_t NumRows = Inner.numRows();
  const uint32_t Sentinel = static_cast<uint32_t>(NumRows);
  const size_t L = lanes();
  const bool F32 = Precision == SimdPrecision::F32;

  if (F32) {
    RowValF.assign(NumRows, 0.0f);
    VScratchF.assign(NumRows, 0.0f);
  } else {
    RowHinge.assign(NumRows, 0.0);
    HScratch.assign(NumRows, 0.0);
  }
  RScratch.assign(NumRows, 0);

  // The scatter operands, precomputed in the inner kernel's contiguous
  // term order: the same Weight·Coef scalar product the compiled kernel
  // forms per violated term — precomputing it cannot change its rounding.
  SWC.resize(CO.size());
  for (size_t R = 0; R < NumRows; ++R)
    for (uint32_t K = RB[R]; K < RB[R + 1]; ++K)
      SWC[K] = WT[R] * CO[K];

  // Same shard partitioning rule as Objective/CompiledObjective: a
  // function of the row count only, so the shard-order reduction matches
  // the compiled path bit for bit at every Jobs setting.
  const size_t Size =
      std::max(MinShardSize, (NumRows + MaxShards - 1) / MaxShards);
  for (size_t Begin = 0; Begin < NumRows; Begin += Size) {
    Shard S;
    S.Begin = Begin;
    S.End = std::min(NumRows, Begin + Size);
    S.BlockBegin = BlockWidth.size();

    // Stable sort by descending row length: rows of similar length share
    // a block, minimizing the padding a block's widest lane imposes on
    // the others. Stability keeps equal-length rows in original order.
    std::vector<uint32_t> Order(S.End - S.Begin);
    std::iota(Order.begin(), Order.end(), static_cast<uint32_t>(S.Begin));
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return RB[A + 1] - RB[A] > RB[B + 1] - RB[B];
                     });

    for (size_t I = 0; I < Order.size(); I += L) {
      const uint32_t Widest = Order[I]; // Sorted: lane 0 is the longest.
      const uint32_t W = RB[Widest + 1] - RB[Widest];
      BlockWidth.push_back(W);
      BlockOff.push_back(BIdx.size());
      BIdx.resize(BIdx.size() + static_cast<size_t>(W) * L, 0);
      if (F32)
        BValF.resize(BIdx.size(), 0.0f);
      else
        BVal.resize(BIdx.size(), 0.0);
      for (size_t Lane = 0; Lane < L; ++Lane) {
        const size_t Slot = I + Lane;
        if (Slot >= Order.size()) {
          BlockRows.push_back(Sentinel);
          if (F32) {
            BNegCF.push_back(0.0f);
          } else {
            BNegC.push_back(0.0);
            BW.push_back(0.0);
          }
          continue;
        }
        const uint32_t Row = Order[Slot];
        BlockRows.push_back(Row);
        if (F32) {
          BNegCF.push_back(static_cast<float>(-RC[Row]));
        } else {
          BNegC.push_back(-RC[Row]);
          BW.push_back(WT[Row]);
        }
        const uint32_t Len = RB[Row + 1] - RB[Row];
        for (uint32_t J = 0; J < Len; ++J) {
          const size_t At = BlockOff.back() + static_cast<size_t>(J) * L +
                            Lane;
          BIdx[At] = VI[RB[Row] + J];
          if (F32)
            BValF[At] = static_cast<float>(CO[RB[Row] + J]);
          else
            BVal[At] = CO[RB[Row] + J];
        }
      }
    }
    S.BlockEnd = BlockWidth.size();
    Shards.push_back(S);
  }
}

void SimdObjective::valuePass(const Shard &S, const double *X) const {
  if (Precision == SimdPrecision::F64) {
#if SELDON_X86
    if (UseAvx512) {
      valuePassF64Avx512(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                         BlockWidth.data(), BlockRows.data(), BNegC.data(),
                         BW.data(), BIdx.data(), BVal.data(), X,
                         static_cast<uint32_t>(numRows()), RowHinge.data());
      return;
    }
    if (UseAvx2) {
      valuePassF64Avx2(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                       BlockWidth.data(), BlockRows.data(), BNegC.data(),
                       BW.data(), BIdx.data(), BVal.data(), X,
                       static_cast<uint32_t>(numRows()), RowHinge.data());
      return;
    }
#endif
    valuePassF64Scalar(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                       BlockWidth.data(), BlockRows.data(), BNegC.data(),
                       BW.data(), BIdx.data(), BVal.data(), X,
                       static_cast<uint32_t>(numRows()), RowHinge.data());
    return;
  }
#if SELDON_X86
  if (UseAvx512) {
    valuePassF32Avx512(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                       BlockWidth.data(), BlockRows.data(), BNegCF.data(),
                       BIdx.data(), BValF.data(), XF.data(),
                       static_cast<uint32_t>(numRows()), RowValF.data());
    return;
  }
  if (UseAvx2) {
    valuePassF32Avx2(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                     BlockWidth.data(), BlockRows.data(), BNegCF.data(),
                     BIdx.data(), BValF.data(), XF.data(),
                     static_cast<uint32_t>(numRows()), RowValF.data());
    return;
  }
#endif
  valuePassF32Scalar(S.BlockBegin, S.BlockEnd, BlockOff.data(),
                     BlockWidth.data(), BlockRows.data(), BNegCF.data(),
                     BIdx.data(), BValF.data(), XF.data(),
                     static_cast<uint32_t>(numRows()), RowValF.data());
  (void)X;
}

double SimdObjective::shardEpilogue(size_t Begin, size_t End,
                                    double *GradOut) const {
  // Original row order, same accumulation sequence as
  // CompiledObjective::shardSweep — this is where bit-identity of the
  // hinge total and gradient is anchored. In fp64 mode the value pass
  // already formed H = Weight·max(V, 0): H > 0 iff V > 0 (weights are
  // >= 1, so the product cannot underflow to zero), and for a violated
  // row H is exactly the compiled kernel's Weight·V term. The scatter
  // adds the precomputed contiguous Weight·Coef products: same values,
  // same targets, same order as the compiled kernel.
  const std::vector<uint32_t> &RB = Inner.rowBegin();
  const std::vector<uint32_t> &VI = Inner.varIdx();
  const bool F32 = Precision == SimdPrecision::F32;
  double Total = 0.0;
#if SELDON_X86
  if (UseAvx512) {
    // Branch-free variant: compact the violated rows (order-preserving),
    // then accumulate and scatter over the compact list — the identical
    // value sequence, minus the per-row mispredictions.
    uint32_t *ROut = RScratch.data() + Begin;
    // The scatter coalesces runs of consecutive violated rows into one
    // streaming pass over their (contiguous) CSR entry ranges — the same
    // K sequence as per-row loops, minus the per-row bookkeeping. The
    // hinge total still accumulates one row at a time, in order.
    if (F32) {
      float *VOut = VScratchF.data() + Begin;
      const size_t N =
          compressViolatedF32(RowValF.data(), Begin, End, VOut, ROut);
      const std::vector<double> &WT = Inner.weight();
      size_t I = 0;
      while (I < N) {
        const uint32_t R0 = ROut[I];
        uint32_t R1 = R0;
        Total += WT[R0] * static_cast<double>(VOut[I]);
        ++I;
        while (I < N && ROut[I] == R1 + 1) {
          R1 = ROut[I];
          Total += WT[R1] * static_cast<double>(VOut[I]);
          ++I;
        }
        if (GradOut)
          for (uint32_t K = RB[R0]; K < RB[R1 + 1]; ++K)
            GradOut[VI[K]] += SWC[K];
      }
    } else {
      double *HOut = HScratch.data() + Begin;
      const size_t N =
          compressViolatedF64(RowHinge.data(), Begin, End, HOut, ROut);
      size_t I = 0;
      while (I < N) {
        const uint32_t R0 = ROut[I];
        uint32_t R1 = R0;
        Total += HOut[I];
        ++I;
        while (I < N && ROut[I] == R1 + 1) {
          R1 = ROut[I];
          Total += HOut[I];
          ++I;
        }
        if (GradOut)
          for (uint32_t K = RB[R0]; K < RB[R1 + 1]; ++K)
            GradOut[VI[K]] += SWC[K];
      }
    }
    return Total;
  }
#endif
  if (F32) {
    const std::vector<double> &WT = Inner.weight();
    for (size_t R = Begin; R < End; ++R) {
      const double V = static_cast<double>(RowValF[R]);
      if (V <= 0.0)
        continue; // Satisfied: no loss, subgradient 0.
      Total += WT[R] * V;
      if (GradOut)
        for (uint32_t K = RB[R]; K < RB[R + 1]; ++K)
          GradOut[VI[K]] += SWC[K];
    }
    return Total;
  }
  for (size_t R = Begin; R < End; ++R) {
    const double H = RowHinge[R];
    if (H <= 0.0)
      continue; // Satisfied: no loss, subgradient 0.
    Total += H;
    if (GradOut)
      for (uint32_t K = RB[R]; K < RB[R + 1]; ++K)
        GradOut[VI[K]] += SWC[K];
  }
  return Total;
}

double SimdObjective::sweep(const std::vector<double> &X, bool WithGradient,
                            std::vector<double> *Grad) const {
  const size_t NumVars = Inner.numVars();
  assert(X.size() == NumVars);
  if (WithGradient)
    Grad->assign(NumVars, 0.0);
  if (Shards.empty())
    return 0.0;

  if (Precision == SimdPrecision::F32) {
    XF.resize(NumVars);
    for (size_t V = 0; V < NumVars; ++V)
      XF[V] = static_cast<float>(X[V]);
  }

  if (Shards.size() == 1) {
    valuePass(Shards[0], X.data());
    return shardEpilogue(Shards[0].Begin, Shards[0].End,
                         WithGradient ? Grad->data() : nullptr);
  }

  ShardHinge.assign(Shards.size(), 0.0);
  if (WithGradient)
    ShardGrad.resize(Shards.size());
  auto RunShard = [&](size_t S, unsigned) {
    valuePass(Shards[S], X.data());
    double *GradOut = nullptr;
    if (WithGradient) {
      ShardGrad[S].assign(NumVars, 0.0);
      GradOut = ShardGrad[S].data();
    }
    ShardHinge[S] = shardEpilogue(Shards[S].Begin, Shards[S].End, GradOut);
  };
  if (Pool)
    Pool->parallelFor(Shards.size(), RunShard);
  else
    for (size_t S = 0; S < Shards.size(); ++S)
      RunShard(S, 0);

  // Reduce in shard order (deterministic regardless of execution order),
  // exactly like CompiledObjective::sweep.
  double Total = 0.0;
  for (double P : ShardHinge)
    Total += P;
  if (!WithGradient)
    return Total;

  double *Out = Grad->data();
  auto ReduceRange = [&](size_t Begin, size_t End) {
    for (const std::vector<double> &Buf : ShardGrad)
      for (size_t V = Begin; V < End; ++V)
        Out[V] += Buf[V];
  };
  if (Pool && NumVars >= 4096) {
    unsigned Workers = Pool->numWorkers();
    size_t Chunk = (NumVars + Workers - 1) / Workers;
    size_t NumChunks = (NumVars + Chunk - 1) / Chunk;
    Pool->parallelFor(NumChunks, [&](size_t Ch, unsigned) {
      ReduceRange(Ch * Chunk, std::min(NumVars, (Ch + 1) * Chunk));
    });
  } else {
    ReduceRange(0, NumVars);
  }
  return Total;
}

double SimdObjective::valueAndGradient(const std::vector<double> &X,
                                       std::vector<double> &Grad) const {
  double Total = sweep(X, /*WithGradient=*/true, &Grad);
  // Flat pin/L1 epilogue, identical sequence to CompiledObjective.
  const uint8_t *Pin = Inner.pinnedMask().data();
  const double Lambda = Inner.lambda();
  const size_t NumVars = Inner.numVars();
  double *G = Grad.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V]) {
      G[V] = 0.0;
    } else {
      G[V] += Lambda;
      Total += Lambda * X[V];
    }
  }
  return Total;
}

double SimdObjective::hingeLoss(const std::vector<double> &X) const {
  return sweep(X, /*WithGradient=*/false, nullptr);
}

double SimdObjective::value(const std::vector<double> &X) const {
  double Total = hingeLoss(X);
  const uint8_t *Pin = Inner.pinnedMask().data();
  const double Lambda = Inner.lambda();
  const size_t NumVars = Inner.numVars();
  for (uint32_t V = 0; V < NumVars; ++V)
    if (!Pin[V])
      Total += Lambda * X[V];
  return Total;
}

void SimdObjective::gradient(const std::vector<double> &X,
                             std::vector<double> &Grad) const {
  sweep(X, /*WithGradient=*/true, &Grad);
  const uint8_t *Pin = Inner.pinnedMask().data();
  const double Lambda = Inner.lambda();
  const size_t NumVars = Inner.numVars();
  double *G = Grad.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V])
      G[V] = 0.0;
    else
      G[V] += Lambda;
  }
}
