//===- bench/solver_kernel.cpp - Legacy vs compiled solve stage -----------===//
//
// Times the solve stage on the Fig. 10 corpus with the legacy Objective
// and with the compiled fused kernel, at Jobs=1 and at SELDON_JOBS threads,
// and verifies that all four runs emit byte-identical learned
// specifications. Emits a JSON summary to stdout (scripts/bench_solver.sh
// redirects it into BENCH_solver.json) and a human-readable table to
// stderr. Exits non-zero if any specification differs.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct SolveRun {
  infer::PipelineResult Result;
  std::string Spec;
};

SolveRun solveWith(infer::Session &Session, bool Compiled, unsigned Jobs) {
  Session.options().UseCompiledSolver = Compiled;
  Session.options().Jobs = Jobs;
  SolveRun Run;
  Run.Result = Session.solve();
  Run.Spec = spec::writeLearnedSpec(Run.Result.Learned, ScoreThreshold);
  return Run;
}

} // namespace

int main() {
  int NumProjects = envInt("SELDON_PROJECTS", 300);
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));

  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.NumProjects = NumProjects;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  // Parse + generate once; every solve below reuses the same constraint
  // system, so the timings isolate the solve stage.
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  infer::Session Session(PipelineOpts);
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);

  std::fprintf(stderr, "solver bench: %d project(s), %u parallel job(s)\n",
               NumProjects, Jobs);
  SolveRun LegacySerial = solveWith(Session, /*Compiled=*/false, 1);
  SolveRun CompiledSerial = solveWith(Session, /*Compiled=*/true, 1);
  SolveRun LegacyParallel = solveWith(Session, /*Compiled=*/false, Jobs);
  SolveRun CompiledParallel = solveWith(Session, /*Compiled=*/true, Jobs);

  bool Identical = LegacySerial.Spec == CompiledSerial.Spec &&
                   LegacySerial.Spec == LegacyParallel.Spec &&
                   LegacySerial.Spec == CompiledParallel.Spec;

  const infer::PipelineResult &R = CompiledSerial.Result;
  const solver::CompileStats &S = R.SolverStats;
  double SerialSpeedup =
      CompiledSerial.Result.SolveSeconds > 0.0
          ? LegacySerial.Result.SolveSeconds /
                CompiledSerial.Result.SolveSeconds
          : 0.0;
  double ParallelSpeedup =
      CompiledParallel.Result.SolveSeconds > 0.0
          ? LegacyParallel.Result.SolveSeconds /
                CompiledParallel.Result.SolveSeconds
          : 0.0;

  std::fprintf(stderr,
               "system: %zu constraints -> %zu rows (dedup %.2fx), "
               "%zu non-zeros, %d iterations\n",
               S.RowsBefore, S.RowsAfter, S.dedupRatio(), S.NonZeros,
               R.Solve.Iterations);
  std::fprintf(stderr, "legacy   jobs=1: %.3fs   jobs=%u: %.3fs\n",
               LegacySerial.Result.SolveSeconds, Jobs,
               LegacyParallel.Result.SolveSeconds);
  std::fprintf(stderr, "compiled jobs=1: %.3fs   jobs=%u: %.3fs\n",
               CompiledSerial.Result.SolveSeconds, Jobs,
               CompiledParallel.Result.SolveSeconds);
  std::fprintf(stderr, "speedup  jobs=1: %.2fx   jobs=%u: %.2fx\n",
               SerialSpeedup, Jobs, ParallelSpeedup);
  std::fprintf(stderr, "learned specs byte-identical across all runs: %s\n",
               Identical ? "yes" : "NO — EQUIVALENCE BUG");

  std::string Json = "{\n";
  Json += formatString("  \"projects\": %d,\n", NumProjects);
  Json += formatString("  \"files\": %zu,\n", R.NumFiles);
  Json += formatString("  \"jobs\": %u,\n", Jobs);
  Json += formatString("  \"constraints\": %zu,\n", S.RowsBefore);
  Json += formatString("  \"rows_after_dedup\": %zu,\n", S.RowsAfter);
  Json += formatString("  \"dedup_ratio\": %.4f,\n", S.dedupRatio());
  Json += formatString("  \"nonzeros\": %zu,\n", S.NonZeros);
  Json += formatString("  \"max_multiplicity\": %zu,\n", S.MaxMultiplicity);
  Json += formatString("  \"iterations\": %d,\n", R.Solve.Iterations);
  Json += formatString("  \"legacy_serial_seconds\": %.6f,\n",
                       LegacySerial.Result.SolveSeconds);
  Json += formatString("  \"compiled_serial_seconds\": %.6f,\n",
                       CompiledSerial.Result.SolveSeconds);
  Json += formatString("  \"legacy_parallel_seconds\": %.6f,\n",
                       LegacyParallel.Result.SolveSeconds);
  Json += formatString("  \"compiled_parallel_seconds\": %.6f,\n",
                       CompiledParallel.Result.SolveSeconds);
  Json += formatString("  \"serial_speedup\": %.4f,\n", SerialSpeedup);
  Json += formatString("  \"parallel_speedup\": %.4f,\n", ParallelSpeedup);
  Json += formatString("  \"byte_identical\": %s\n",
                       Identical ? "true" : "false");
  Json += "}\n";
  std::fputs(Json.c_str(), stdout);

  return Identical ? 0 : 1;
}
