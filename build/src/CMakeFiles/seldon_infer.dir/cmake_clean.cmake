file(REMOVE_RECURSE
  "CMakeFiles/seldon_infer.dir/infer/Pipeline.cpp.o"
  "CMakeFiles/seldon_infer.dir/infer/Pipeline.cpp.o.d"
  "libseldon_infer.a"
  "libseldon_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
