//===- solver/Objective.cpp - Relaxed constraint-system objective ---------===//

#include "solver/Objective.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace seldon;
using namespace seldon::solver;

const char *seldon::solver::solverBackendName(SolverBackend Backend) {
  switch (Backend) {
  case SolverBackend::Legacy:
    return "legacy";
  case SolverBackend::Compiled:
    return "compiled";
  case SolverBackend::Simd:
    return "simd";
  case SolverBackend::SimdF32:
    return "simd-f32";
  }
  return "compiled";
}

bool seldon::solver::parseSolverBackend(const std::string &Name,
                                        SolverBackend &Out) {
  if (Name == "legacy")
    Out = SolverBackend::Legacy;
  else if (Name == "compiled")
    Out = SolverBackend::Compiled;
  else if (Name == "simd")
    Out = SolverBackend::Simd;
  else if (Name == "simd-f32" || Name == "simd_f32")
    Out = SolverBackend::SimdF32;
  else
    return false;
  return true;
}

Objective::Objective(size_t NumVars,
                     std::vector<LinearConstraint> Constraints, double Lambda)
    : NumVars(NumVars), Constraints(std::move(Constraints)), Lambda(Lambda),
      Pinned(NumVars, 0), PinnedValues(NumVars, 0.0) {
#ifndef NDEBUG
  for (const LinearConstraint &C : this->Constraints) {
    for (const Term &T : C.Lhs)
      assert(T.Var < NumVars && "constraint references unknown variable");
    for (const Term &T : C.Rhs)
      assert(T.Var < NumVars && "constraint references unknown variable");
  }
#endif
  // Fixed shard structure: a function of the constraint count only, so
  // every Jobs setting performs the same floating-point reductions.
  size_t N = this->Constraints.size();
  size_t Size = std::max(MinShardSize, (N + MaxShards - 1) / MaxShards);
  for (size_t Begin = 0; Begin < N; Begin += Size)
    Shards.push_back({Begin, std::min(N, Begin + Size)});
}

void Objective::pin(uint32_t Var, double Value) {
  assert(Var < NumVars);
  assert(Value >= 0.0 && Value <= 1.0 && "pinned values must lie in [0,1]");
  Pinned[Var] = 1;
  PinnedValues[Var] = Value;
}

std::vector<double> Objective::initialPoint() const {
  std::vector<double> X(NumVars, 0.0);
  project(X);
  return X;
}

double Objective::shardHingeLoss(const Shard &S,
                                 const std::vector<double> &X) const {
  double Total = 0.0;
  for (size_t I = S.Begin; I < S.End; ++I) {
    const LinearConstraint &C = Constraints[I];
    double V = -C.C;
    for (const Term &T : C.Lhs)
      V += T.Coef * X[T.Var];
    for (const Term &T : C.Rhs)
      V -= T.Coef * X[T.Var];
    if (V > 0.0)
      Total += V;
  }
  return Total;
}

double Objective::hingeLoss(const std::vector<double> &X) const {
  if (Shards.empty())
    return 0.0;
  if (Shards.size() == 1)
    return shardHingeLoss(Shards[0], X);

  std::vector<double> Partial(Shards.size(), 0.0);
  auto RunShard = [&](size_t S, unsigned) {
    Partial[S] = shardHingeLoss(Shards[S], X);
  };
  if (Pool)
    Pool->parallelFor(Shards.size(), RunShard);
  else
    for (size_t S = 0; S < Shards.size(); ++S)
      RunShard(S, 0);
  // Reduce in shard order (deterministic regardless of execution order).
  double Total = 0.0;
  for (double P : Partial)
    Total += P;
  return Total;
}

double Objective::value(const std::vector<double> &X) const {
  double Total = hingeLoss(X);
  const uint8_t *Pin = Pinned.data();
  for (uint32_t V = 0; V < NumVars; ++V)
    if (!Pin[V])
      Total += Lambda * X[V];
  return Total;
}

void Objective::shardGradient(const Shard &S, const std::vector<double> &X,
                              std::vector<double> &Out) const {
  for (size_t I = S.Begin; I < S.End; ++I) {
    const LinearConstraint &C = Constraints[I];
    double V = -C.C;
    for (const Term &T : C.Lhs)
      V += T.Coef * X[T.Var];
    for (const Term &T : C.Rhs)
      V -= T.Coef * X[T.Var];
    if (V <= 0.0)
      continue; // Satisfied: subgradient 0.
    for (const Term &T : C.Lhs)
      Out[T.Var] += T.Coef;
    for (const Term &T : C.Rhs)
      Out[T.Var] -= T.Coef;
  }
}

void Objective::gradient(const std::vector<double> &X,
                         std::vector<double> &Grad) const {
  Grad.assign(NumVars, 0.0);
  if (Shards.size() == 1) {
    shardGradient(Shards[0], X, Grad);
  } else if (!Shards.empty()) {
    ShardGrad.resize(Shards.size());
    auto RunShard = [&](size_t S, unsigned) {
      ShardGrad[S].assign(NumVars, 0.0);
      shardGradient(Shards[S], X, ShardGrad[S]);
    };
    if (Pool)
      Pool->parallelFor(Shards.size(), RunShard);
    else
      for (size_t S = 0; S < Shards.size(); ++S)
        RunShard(S, 0);

    // Reduce buffers in shard order. Each variable's sum is an independent
    // fixed-order chain, so the reduction may fan out over variable ranges
    // without changing a single bit of the result.
    auto ReduceRange = [&](size_t Begin, size_t End) {
      for (const std::vector<double> &Buf : ShardGrad)
        for (size_t V = Begin; V < End; ++V)
          Grad[V] += Buf[V];
    };
    if (Pool && NumVars >= 4096) {
      unsigned Workers = Pool->numWorkers();
      size_t Chunk = (NumVars + Workers - 1) / Workers;
      size_t NumChunks = (NumVars + Chunk - 1) / Chunk;
      Pool->parallelFor(NumChunks, [&](size_t C, unsigned) {
        ReduceRange(C * Chunk, std::min(NumVars, (C + 1) * Chunk));
      });
    } else {
      ReduceRange(0, NumVars);
    }
  }
  const uint8_t *Pin = Pinned.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V])
      Grad[V] = 0.0;
    else
      Grad[V] += Lambda;
  }
}

void Objective::project(std::vector<double> &X) const {
  assert(X.size() == NumVars);
  const uint8_t *Pin = Pinned.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V])
      X[V] = PinnedValues[V];
    else
      X[V] = std::clamp(X[V], 0.0, 1.0);
  }
}
