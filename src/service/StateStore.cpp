//===- service/StateStore.cpp - seldond durable state on disk -------------===//

#include "service/StateStore.h"

#include "cache/GraphCache.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

using namespace seldon;
using namespace seldon::service;

namespace fs = std::filesystem;

namespace {

constexpr const char *JournalName = "state.wal";
constexpr const char *SnapshotSuffix = ".ssn";
constexpr const char *JournalSuffix = ".wal";

/// Writes all of \p Bytes to \p Fd, retrying short writes and EINTR.
bool writeAll(int Fd, const char *Bytes, size_t Len, std::string &Error) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, Bytes + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Reads a whole file; false (with \p Error) when it cannot be read.
bool readFile(const std::string &Path, std::string &Out,
              std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = formatString("cannot open %s", Path.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

/// Parses "state-<digits>.ssn" into its sequence number.
bool parseSnapshotName(const std::string &Name, uint64_t &Seq) {
  constexpr std::string_view Prefix = "state-";
  if (Name.substr(0, Prefix.size()) != Prefix)
    return false;
  size_t DigitsEnd = Name.find_first_not_of(
      "0123456789", Prefix.size());
  if (DigitsEnd == Prefix.size() || DigitsEnd == std::string::npos ||
      Name.substr(DigitsEnd) != SnapshotSuffix)
    return false;
  Seq = std::strtoull(Name.substr(Prefix.size()).c_str(), nullptr, 10);
  return true;
}

} // namespace

StateStore::StateStore(std::string Dir) : Dir(std::move(Dir)) {
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
  if (Ec) {
    DirError = formatString("cannot create state directory %s: %s",
                            this->Dir.c_str(), Ec.message().c_str());
    return;
  }
  if (!fs::is_directory(this->Dir, Ec)) {
    DirError = formatString("state path %s is not a directory",
                            this->Dir.c_str());
    return;
  }
  // A publish that crashed between its temp write and the rename leaks
  // "<file>.tmp<seq>"; the same age-guarded digits-only rule the caches
  // use keeps a concurrent writer's in-flight temp alive.
  Stats.StaleTempsRemoved =
      cache::sweepStaleTemps(this->Dir, SnapshotSuffix) +
      cache::sweepStaleTemps(this->Dir, JournalSuffix);

  std::string Error;
  if (!fs::exists(journalPath(), Ec)) {
    // A fresh journal is published whole (header via temp + rename), so
    // scanJournal() can treat a short header as corruption, never a torn
    // append.
    if (!publishFile(journalPath(), journalHeader(), /*ArmCrash=*/false,
                     0, Error)) {
      DirError = formatString("cannot create journal: %s", Error.c_str());
      return;
    }
  }
  if (!openJournal(Error))
    DirError = Error;
}

StateStore::~StateStore() { closeJournal(); }

std::string StateStore::journalPath() const {
  return Dir + "/" + JournalName;
}

std::string StateStore::snapshotPath(uint64_t Seq) const {
  return formatString("%s/state-%llu%s", Dir.c_str(),
                      static_cast<unsigned long long>(Seq),
                      SnapshotSuffix);
}

bool StateStore::openJournal(std::string &Error) {
  closeJournal();
  JournalFd = ::open(journalPath().c_str(), O_WRONLY | O_APPEND, 0644);
  if (JournalFd < 0) {
    Error = formatString("cannot open journal %s: %s",
                         journalPath().c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

void StateStore::closeJournal() {
  if (JournalFd >= 0) {
    ::close(JournalFd);
    JournalFd = -1;
  }
}

void StateStore::fsyncDir() {
  // Make the rename itself durable; best-effort (some filesystems refuse
  // directory fsync) — the file contents were already fsynced.
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
}

bool StateStore::publishFile(const std::string &Path,
                             const std::string &Bytes, bool ArmCrash,
                             uint64_t CrashSeq, std::string &Error) {
  static std::atomic<uint64_t> PublishSeq{0};
  std::string Temp = formatString(
      "%s.tmp%llu", Path.c_str(),
      static_cast<unsigned long long>(
          PublishSeq.fetch_add(1, std::memory_order_relaxed)));
  int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = formatString("cannot create %s: %s", Temp.c_str(),
                         std::strerror(errno));
    return false;
  }
  std::string WriteError;
  bool Ok = writeAll(Fd, Bytes.data(), Bytes.size(), WriteError);
  if (Ok && ::fsync(Fd) != 0) {
    WriteError = std::strerror(errno);
    Ok = false;
  }
  ::close(Fd);
  if (!Ok) {
    ::unlink(Temp.c_str());
    Error = formatString("cannot write %s: %s", Temp.c_str(),
                         WriteError.c_str());
    return false;
  }
  ++Stats.Fsyncs;
  if (ArmCrash)
    fault::maybeCrash(fault::Point::SnapshotWrite, CrashSeq);
  if (::rename(Temp.c_str(), Path.c_str()) != 0) {
    Error = formatString("cannot rename %s to %s: %s", Temp.c_str(),
                         Path.c_str(), std::strerror(errno));
    ::unlink(Temp.c_str());
    return false;
  }
  fsyncDir();
  return true;
}

bool StateStore::appendRecord(const JournalRecord &Record,
                              std::string &Error) {
  if (!valid() || JournalFd < 0) {
    Error = DirError.empty() ? "journal is not open" : DirError;
    return false;
  }
  std::string Frame = encodeJournalRecord(Record);

  // The torn-tail crash: land a strict prefix of the frame, then die —
  // exactly what a power cut mid-append leaves behind.
  if (fault::enabled() &&
      fault::crashArmed(fault::Point::JournalAppend, Record.Seq)) {
    std::string Dummy;
    (void)writeAll(JournalFd, Frame.data(), Frame.size() / 2, Dummy);
    ::fsync(JournalFd);
    fault::crashExit(fault::Point::JournalAppend, Record.Seq);
  }

  std::string WriteError;
  if (!writeAll(JournalFd, Frame.data(), Frame.size(), WriteError)) {
    Error = formatString("journal append failed: %s", WriteError.c_str());
    return false;
  }
  fault::maybeCrash(fault::Point::JournalFsync, Record.Seq);
  if (::fsync(JournalFd) != 0) {
    Error = formatString("journal fsync failed: %s", std::strerror(errno));
    return false;
  }
  ++Stats.Fsyncs;
  ++Stats.Appends;
  Stats.BytesAppended += Frame.size();
  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("journal.appends").add(1);
    Reg.counter("journal.bytes").add(Frame.size());
    Reg.counter("journal.fsyncs").add(1);
  }
  fault::maybeCrash(fault::Point::JournalSynced, Record.Seq);
  return true;
}

bool StateStore::writeSnapshot(const StateSnapshot &Snapshot,
                               std::string &Error) {
  if (!valid()) {
    Error = DirError;
    return false;
  }
  std::string Bytes = encodeSnapshot(Snapshot);
  if (!publishFile(snapshotPath(Snapshot.LastSeq), Bytes,
                   /*ArmCrash=*/true, Snapshot.LastSeq, Error))
    return false;
  ++Stats.Snapshots;
  Stats.SnapshotBytes += Bytes.size();
  fault::maybeCrash(fault::Point::SnapshotRename, Snapshot.LastSeq);

  // Prune superseded snapshots: recovery prefers the newest, so older
  // ones are dead weight the moment the rename lands.
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    uint64_t Seq = 0;
    if (parseSnapshotName(It->path().filename().string(), Seq) &&
        Seq < Snapshot.LastSeq) {
      std::error_code RmEc;
      fs::remove(It->path(), RmEc);
    }
  }

  // Compact: publish a fresh, empty journal. A crash before the rename
  // leaves the old journal whose records are all <= LastSeq — replay
  // skips them, so compaction is crash-safe at every instant.
  closeJournal();
  std::string ResetError;
  bool Reset = [&]() {
    static std::atomic<uint64_t> ResetSeq{0};
    std::string Temp = formatString(
        "%s.tmp%llu", journalPath().c_str(),
        static_cast<unsigned long long>(
            ResetSeq.fetch_add(1, std::memory_order_relaxed)));
    int Fd = ::open(Temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd < 0) {
      ResetError = formatString("cannot create %s: %s", Temp.c_str(),
                                std::strerror(errno));
      return false;
    }
    std::string Header = journalHeader();
    std::string WriteError;
    bool Ok = writeAll(Fd, Header.data(), Header.size(), WriteError);
    if (Ok && ::fsync(Fd) != 0) {
      WriteError = std::strerror(errno);
      Ok = false;
    }
    ::close(Fd);
    if (!Ok) {
      ::unlink(Temp.c_str());
      ResetError = formatString("cannot write %s: %s", Temp.c_str(),
                                WriteError.c_str());
      return false;
    }
    ++Stats.Fsyncs;
    fault::maybeCrash(fault::Point::JournalReset, Snapshot.LastSeq);
    if (::rename(Temp.c_str(), journalPath().c_str()) != 0) {
      ResetError = formatString("cannot rename %s: %s", Temp.c_str(),
                                std::strerror(errno));
      ::unlink(Temp.c_str());
      return false;
    }
    fsyncDir();
    return true;
  }();
  if (!Reset) {
    Error = formatString("journal compaction failed: %s",
                         ResetError.c_str());
    // The old journal is still valid; reopen and keep appending to it.
    std::string ReopenError;
    (void)openJournal(ReopenError);
    return false;
  }
  ++Stats.Compactions;
  if (!openJournal(Error))
    return false;

  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("snapshot.writes").add(1);
    Reg.counter("snapshot.bytes").add(Bytes.size());
    Reg.counter("journal.compactions").add(1);
  }
  return true;
}

io::IOResult<RecoveredState> StateStore::recover() {
  using Result = io::IOResult<RecoveredState>;
  if (!valid())
    return Result::failure(DirError);
  Timer Recovery;
  RecoveredState State;

  // Newest valid snapshot wins; corrupt ones are evicted and the
  // next-older tried — a bad snapshot degrades recovery, never fails it.
  std::vector<std::pair<uint64_t, std::string>> Snapshots;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    uint64_t Seq = 0;
    if (parseSnapshotName(It->path().filename().string(), Seq))
      Snapshots.emplace_back(Seq, It->path().string());
  }
  std::sort(Snapshots.begin(), Snapshots.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });
  for (const auto &[Seq, Path] : Snapshots) {
    std::string Bytes, ReadError;
    if (!readFile(Path, Bytes, ReadError)) {
      Stats.Errors.push_back(formatString("snapshot %llu: %s",
                                          static_cast<unsigned long long>(
                                              Seq),
                                          ReadError.c_str()));
      continue;
    }
    io::IOResult<StateSnapshot> Decoded = decodeSnapshot(Bytes);
    if (!Decoded) {
      Stats.Errors.push_back(formatString(
          "evicted snapshot %llu: %s",
          static_cast<unsigned long long>(Seq), Decoded.Error.c_str()));
      ++Stats.EvictedSnapshots;
      std::error_code RmEc;
      fs::remove(Path, RmEc);
      continue;
    }
    State.HasSnapshot = true;
    State.Snapshot = std::move(Decoded.Value);
    break;
  }

  // Scan the journal. Torn tail: truncate and keep the prefix. Interior
  // corruption: evict the whole journal — the snapshot still restores
  // everything it covers, and starting a fresh journal beats trusting
  // bytes that failed their checksum.
  std::string Bytes, ReadError;
  if (!readFile(journalPath(), Bytes, ReadError))
    return Result::failure(
        formatString("cannot read journal: %s", ReadError.c_str()));
  io::IOResult<JournalScan> Scan = scanJournal(Bytes);
  std::vector<JournalRecord> Records;
  if (!Scan) {
    Stats.Errors.push_back(
        formatString("evicted journal: %s", Scan.Error.c_str()));
    ++Stats.EvictedJournals;
    closeJournal();
    std::string Error;
    if (!publishFile(journalPath(), journalHeader(), /*ArmCrash=*/false,
                     0, Error) ||
        !openJournal(Error))
      return Result::failure(
          formatString("cannot rebuild journal: %s", Error.c_str()));
  } else {
    Records = std::move(Scan.Value.Records);
    if (Scan.Value.Torn) {
      uint64_t Dropped = Bytes.size() - Scan.Value.ValidBytes;
      Stats.TruncatedTailBytes += Dropped;
      Stats.Errors.push_back(formatString(
          "truncated torn journal tail: dropped %llu byte(s), kept %zu "
          "record(s)",
          static_cast<unsigned long long>(Dropped), Records.size()));
      closeJournal();
      if (::truncate(journalPath().c_str(),
                     static_cast<off_t>(Scan.Value.ValidBytes)) != 0)
        return Result::failure(formatString(
            "cannot truncate torn journal: %s", std::strerror(errno)));
      std::string Error;
      if (!openJournal(Error))
        return Result::failure(Error);
    }
  }

  // Replay suffix: records above the snapshot's horizon, minus aborts
  // and the records they void.
  uint64_t Horizon = State.HasSnapshot ? State.Snapshot.LastSeq : 0;
  std::set<uint64_t> Aborted;
  for (const JournalRecord &R : Records)
    if (R.Op == JournalOp::Abort)
      Aborted.insert(R.AbortedSeq);
  for (JournalRecord &R : Records)
    if (R.Op != JournalOp::Abort && R.Seq > Horizon &&
        Aborted.count(R.Seq) == 0)
      State.Replay.push_back(std::move(R));
  Stats.ReplayedRecords += State.Replay.size();
  Stats.RecoverySeconds = Recovery.seconds();

  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("journal.replayed").add(State.Replay.size());
    Reg.gauge("recovery.seconds").set(Stats.RecoverySeconds);
    Reg.gauge("recovery.snapshot_found")
        .set(State.HasSnapshot ? 1.0 : 0.0);
  }

  io::IOResult<RecoveredState> Out;
  Out.Value = std::move(State);
  return Out;
}
