//===- pysem/ScopeBuilder.h - Module-level scope information -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects the per-module declarations that the propagation-graph builder
/// needs: top-level functions (for same-module call inlining, paper §5.2),
/// classes with their methods and resolved base-class names (for the
/// representation backoff of §3.2), and the import map.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYSEM_SCOPEBUILDER_H
#define SELDON_PYSEM_SCOPEBUILDER_H

#include "pysem/QualifiedNames.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace pysem {

/// A class definition with its methods and import-resolved base names.
struct ClassInfo {
  const pyast::ClassDefStmt *Def = nullptr;
  std::string Name;
  /// Base classes as qualified dotted names (e.g. "base_driver.ThreadDriver").
  std::vector<std::string> BaseQualNames;
  /// Base classes defined in this same module, by local name.
  std::vector<std::string> LocalBases;
  std::unordered_map<std::string, const pyast::FunctionDefStmt *> Methods;
};

/// Scope information for one module.
class ModuleScope {
public:
  /// Builds the scope for \p Module named \p ModuleName.
  void build(const pyast::ModuleNode *Module, const std::string &ModuleName);

  /// Top-level function with local name \p Name, or null.
  const pyast::FunctionDefStmt *lookupFunction(const std::string &Name) const;

  /// Class with local name \p Name, or null.
  const ClassInfo *lookupClass(const std::string &Name) const;

  /// Method \p MethodName on class \p ClassName, searching same-module base
  /// classes transitively. Returns null when the method is not found or the
  /// class is unknown.
  const pyast::FunctionDefStmt *lookupMethod(const std::string &ClassName,
                                             const std::string &MethodName) const;

  const ImportMap &imports() const { return Imports; }
  const std::string &moduleName() const { return ModuleName; }
  const std::unordered_map<std::string, ClassInfo> &classes() const {
    return Classes;
  }
  const std::unordered_map<std::string, const pyast::FunctionDefStmt *> &
  functions() const {
    return Functions;
  }

private:
  std::string ModuleName;
  ImportMap Imports;
  std::unordered_map<std::string, const pyast::FunctionDefStmt *> Functions;
  std::unordered_map<std::string, ClassInfo> Classes;
};

} // namespace pysem
} // namespace seldon

#endif // SELDON_PYSEM_SCOPEBUILDER_H
