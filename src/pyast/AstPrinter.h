//===- pyast/AstPrinter.h - Debug dump of the Python AST ---------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST as an indented s-expression-like text dump, used by the
/// parser tests and the `explore_graph` example.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYAST_ASTPRINTER_H
#define SELDON_PYAST_ASTPRINTER_H

#include <string>

namespace seldon {
namespace pyast {

class Node;
class Expr;

/// Returns a multi-line indented dump of \p Root.
std::string dumpAst(const Node *Root);

/// Returns a compact single-line rendering of \p E resembling the original
/// source (lossy: operator spacing normalized, literals re-escaped).
std::string exprToString(const Expr *E);

} // namespace pyast
} // namespace seldon

#endif // SELDON_PYAST_ASTPRINTER_H
