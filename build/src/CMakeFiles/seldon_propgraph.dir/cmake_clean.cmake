file(REMOVE_RECURSE
  "CMakeFiles/seldon_propgraph.dir/propgraph/Event.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/Event.cpp.o.d"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphBuilder.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphBuilder.cpp.o.d"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphExport.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphExport.cpp.o.d"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphStats.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/GraphStats.cpp.o.d"
  "CMakeFiles/seldon_propgraph.dir/propgraph/PropagationGraph.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/PropagationGraph.cpp.o.d"
  "CMakeFiles/seldon_propgraph.dir/propgraph/RepTable.cpp.o"
  "CMakeFiles/seldon_propgraph.dir/propgraph/RepTable.cpp.o.d"
  "libseldon_propgraph.a"
  "libseldon_propgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_propgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
