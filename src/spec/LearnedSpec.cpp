//===- spec/LearnedSpec.cpp - Scored, learned specifications --------------===//

#include "spec/LearnedSpec.h"

#include <algorithm>
#include <cmath>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

void LearnedSpec::setScore(const std::string &Rep, Role R, double Score) {
  Scores[Rep][R] = Score;
}

double LearnedSpec::score(const std::string &Rep, Role R) const {
  auto It = Scores.find(Rep);
  return It == Scores.end() ? 0.0 : It->second[R];
}

std::optional<double>
LearnedSpec::selectRole(const std::vector<std::string> &RepOptions, Role R,
                        double Threshold) const {
  double Decay = 1.0;
  for (const std::string &Rep : RepOptions) {
    auto It = Scores.find(Rep);
    if (It != Scores.end()) {
      double Decayed = Decay * It->second[R];
      if (Decayed >= Threshold)
        return Decayed;
    }
    Decay *= BackoffDecay;
  }
  return std::nullopt;
}

TaintSpec LearnedSpec::toSpec(double Threshold) const {
  TaintSpec Out;
  for (const auto &[Rep, RS] : Scores)
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink})
      if (RS[R] >= Threshold)
        Out.add(Rep, R);
  return Out;
}

size_t LearnedSpec::countAbove(Role R, double Threshold) const {
  size_t N = 0;
  for (const auto &[Rep, RS] : Scores)
    N += RS[R] >= Threshold;
  return N;
}

std::vector<std::pair<std::string, double>>
LearnedSpec::ranked(Role R, double MinScore) const {
  std::vector<std::pair<std::string, double>> Out;
  for (const auto &[Rep, RS] : Scores)
    if (RS[R] > MinScore)
      Out.emplace_back(Rep, RS[R]);
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  return Out;
}
