# Empty dependencies file for argpos_test.
# This may be replaced when dependencies are built.
