//===- service/Service.h - Warm inference service ----------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-serving core of `seldond`: loads a corpus once through the
/// staged infer::Session (so the propagation graph, constraint system, and
/// learned specification stay warm in memory), then answers protocol
/// requests against that state without re-parsing anything.
///
/// Operations (all v1, see docs/architecture.md "The inference service"):
///
///   status    corpus/system/spec/health counters, request + parse metrics
///   query     per-(representation, role) score with supporting
///             constraints — renders through service::QueryResult, so the
///             answer is byte-identical to `seldon explain --json`
///   learn     re-solve with the warm graph and constraint system
///             (optionally warm-started from the current spec); swaps the
///             served specification atomically. With "reload": true, the
///             corpus is re-read from the configured directories into a
///             fresh session first — with the graph + shard caches
///             enabled, only changed projects re-parse and re-extract, so
///             an incremental re-learn costs O(delta) + solve
///   feedback  merge accept/reject verdicts on (representation, role)
///             pairs into the service's cumulative feedback set, re-solve
///             with the feedback-weighted constraint system (warm-started
///             from the served spec by default), and swap the served
///             specification atomically. Verdicts accumulate across
///             requests; an accepted pair raises evidence for the pair
///             (and, decayed, for representations sharing backoff
///             prefixes), a rejected pair lowers it. See
///             constraints/Feedback.h
///   taint     analyze a payload project (inline sources or a directory)
///             against the warm seed + learned specification
///   shutdown  drain: every later request gets a `shutting-down` error
///
/// Threading: handle() is safe to call from any number of threads. Reads
/// (status/query/taint) share the warm state under a shared_mutex;
/// learn/feedback take it exclusively and are the only writers. Admission is a counted
/// gate sized by Options::MaxInFlight — the transport admits a request
/// before handing it to the ThreadPool and releases it after the response
/// is written, so a flood degrades into `overloaded` errors instead of an
/// unbounded queue.
///
/// Durability: with Options::StateDir set, every accepted mutating op
/// (feedback, learn) is journaled and fsynced *before* its re-solve runs,
/// the served state is snapshotted (and the journal compacted) every
/// SnapshotEvery ops and at persist(), and start() recovers the exact
/// pre-crash state: newest valid snapshot installed through
/// Session::restoreSolve (byte-identical scores, no re-optimization),
/// then the journal suffix re-executed through the same code path live
/// requests use. See service/StateStore.h for the on-disk protocol.
///
/// Deadlines: each request gets a cooperative support/Deadline (server
/// default, overridable per request via "deadline_s"). The Session's own
/// run deadline stays disarmed — Session::armDeadline is one-shot, which
/// is wrong for a daemon — so learn budgets flow through
/// SolveOptions::BudgetSeconds/ShouldStop and query/taint poll at stage
/// boundaries. An expiry is a structured `deadline` error, never a hang;
/// a handler that throws is an `internal` error, never a crash
/// (reusing the PR-5 failure discipline; fault injection points inside
/// the pipeline surface the same way).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_SERVICE_H
#define SELDON_SERVICE_SERVICE_H

#include "infer/Pipeline.h"
#include "pysem/Project.h"
#include "service/Protocol.h"
#include "service/StateStore.h"
#include "spec/SeedSpec.h"
#include "support/Deadline.h"

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace seldon {
namespace service {

/// The long-lived inference service behind `seldond`.
class Service {
public:
  struct Options {
    /// Seed specification file (App. B format); empty = built-in seed.
    std::string SeedFile;
    /// Repositories to load at start() and keep warm.
    std::vector<std::string> CorpusDirs;
    /// Persistent propagation-graph cache directory (empty = no cache).
    std::string CacheDir;
    /// Persistent constraint-shard cache directory (empty = no shard
    /// cache). With it, a `learn` request with "reload" re-generates
    /// constraints only for projects whose sources changed; everything
    /// else replays its cached shard. See cache/ShardCache.h.
    std::string ShardCacheDir;
    /// Solver iterations for the initial solve and the `learn` default.
    int Iterations = 600;
    size_t RepCutoff = 5;
    /// Threshold used for spec sizing in status and as the `taint`
    /// default.
    double Threshold = 0.1;
    unsigned Jobs = 0;
    /// Default evaluator backend for the initial solve and `learn`
    /// requests (which may override it per-request with a "backend"
    /// param). See solver::SolverBackend.
    solver::SolverBackend Backend = solver::SolverBackend::Compiled;
    /// Fail start() on the first broken project instead of quarantining.
    bool Strict = false;
    /// Default per-request wall-clock budget (0 = unlimited). Requests
    /// may override with a "deadline_s" member.
    double RequestDeadlineSeconds = 0.0;
    /// Admission slots: requests admitted beyond this count are answered
    /// with `overloaded`.
    size_t MaxInFlight = 64;
    /// Request frame cap in bytes.
    size_t MaxRequestBytes = DefaultMaxRequestBytes;
    /// Durable-state directory (empty = no durability). With it, every
    /// accepted mutating op is journaled + fsynced before its re-solve,
    /// and start() recovers the exact pre-crash state from the newest
    /// snapshot plus the journal suffix. See service/StateStore.h.
    std::string StateDir;
    /// Snapshot + compact the journal after every Nth applied mutating
    /// op (0 = only at persist()/shutdown). Default 1: the journal stays
    /// one op deep, so recovery replays at most the op in flight at the
    /// crash.
    uint64_t SnapshotEvery = 1;
  };

  explicit Service(Options Opts);
  ~Service();

  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Loads the seed and corpus, builds the graph (through the cache when
  /// configured), generates constraints, and solves — the expensive cold
  /// start the daemon pays exactly once. Returns false with a diagnostic
  /// in \p Error on failure.
  bool start(std::string &Error);

  /// Handles one request line (newline already stripped) and returns the
  /// response line (no trailing newline). Never throws. Thread-safe.
  std::string handle(const std::string &Line);

  /// Claims an admission slot; false when MaxInFlight are already held.
  bool tryAdmit();
  /// Returns a slot claimed by tryAdmit().
  void release();

  /// Admission + handle() + release in one call — the serial (`--once`)
  /// path and the simplest correct usage for one-off callers.
  std::string serve(const std::string &Line);

  /// The `overloaded` response for \p Line (salvages the request id so
  /// the caller can correlate).
  std::string overloadedResponse(const std::string &Line) const;

  /// True once a `shutdown` request was accepted.
  bool shuttingDown() const {
    return ShuttingDown.load(std::memory_order_acquire);
  }

  const Options &options() const { return Opts; }

  /// Writes a final snapshot (and compacts the journal) when durability
  /// is enabled and state changed since the last snapshot — the orderly
  /// half of shutdown, called by seldond after the serve loop drains.
  /// No-op without --state-dir. Thread-safe.
  void persist();

  /// The durable store (test hook); null without --state-dir.
  const StateStore *stateStore() const { return Durable.get(); }

  /// The warm pipeline result (test hook). Not synchronized against a
  /// concurrent `learn`; call only when no requests are in flight.
  const infer::PipelineResult &warm() const { return Warm; }

private:
  std::string dispatch(const Request &Req, Deadline &D);
  /// Loads the configured corpus directories into \p Out; false with a
  /// diagnostic in \p Error when a directory is unreadable.
  bool loadCorpus(std::vector<pysem::Project> &Out, std::string &Error);
  /// A fresh Session wired to the configured options and caches.
  std::unique_ptr<infer::Session> makeSession();
  std::string opStatus();
  std::string opQuery(const Request &Req, Deadline &D);
  std::string opLearn(const Request &Req, Deadline &D);
  std::string opFeedback(const Request &Req, Deadline &D);
  std::string opTaint(const Request &Req, Deadline &D);

  /// Executes a feedback/learn op from its journal-record form — the one
  /// code path shared by live requests and recovery replay, so a replayed
  /// op reproduces the original solve exactly. Caller holds WarmMutex
  /// exclusively; \p D may be null (replay runs without a deadline).
  void applyFeedbackRecord(const JournalRecord &Rec, Deadline *D);
  void applyLearnRecord(const JournalRecord &Rec, Deadline *D);
  /// Assigns the next sequence number and appends \p Rec to the journal
  /// (fsynced). Throws OpError(Internal) when the record cannot be made
  /// durable — the op must fail rather than mutate unjournaled state.
  /// No-op without durability. Caller holds WarmMutex exclusively.
  void journalAppend(JournalRecord &Rec);
  /// Best-effort abort record for a journaled op that failed to apply.
  void journalAbort(uint64_t Seq);
  /// Counts one applied op and snapshots per Options::SnapshotEvery.
  void maybeSnapshot();
  /// Publishes a snapshot of the served state and compacts the journal.
  /// Caller holds WarmMutex exclusively (or is single-threaded startup).
  void takeSnapshotLocked();
  /// Recovers durable state after the initial generateConstraints():
  /// installs the newest valid snapshot (or degrades to a cold solve) and
  /// re-executes the journal replay suffix. Fills Warm. False with a
  /// diagnostic in \p Error on unrecoverable IO.
  bool recoverDurableState(std::string &Error);

  Options Opts;
  spec::SeedSpec Seed;
  std::vector<pysem::Project> Corpus;
  std::unique_ptr<infer::Session> Session;
  /// Cumulative accept/reject verdicts merged by `feedback` requests.
  /// The session's PipelineOptions::Feedback points here, so every solve
  /// (initial, learn, feedback) reweights with the same set; while it is
  /// empty the pipeline's passive path is byte-identical. Guarded by
  /// WarmMutex (only `feedback` mutates it, exclusively).
  constraints::FeedbackSet Feedback;

  /// Warm state served to query/taint/status; guarded by WarmMutex
  /// (shared for reads, exclusive for learn).
  mutable std::shared_mutex WarmMutex;
  infer::PipelineResult Warm;
  bool Started = false;

  /// Durable store (null without --state-dir) and its bookkeeping, all
  /// guarded by WarmMutex exclusively (mutating ops are the only users).
  std::unique_ptr<StateStore> Durable;
  /// Next journal sequence number to assign.
  uint64_t NextSeq = 1;
  /// Applied mutating ops since the last snapshot.
  uint64_t OpsSinceSnapshot = 0;
  /// Sequence number covered by the last snapshot (0 = none yet).
  uint64_t LastSnapshotSeq = 0;
  bool EverSnapshotted = false;
  /// The FeedbackOptions the solve that produced Warm applied its
  /// evidence rows with; snapshotted so recovery re-applies identically.
  constraints::FeedbackOptions WarmFO;

  std::atomic<size_t> Admitted{0};
  std::atomic<uint64_t> Handled{0};
  std::atomic<uint64_t> Failed{0};
  std::atomic<bool> ShuttingDown{false};
};

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_SERVICE_H
