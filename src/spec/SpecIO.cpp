//===- spec/SpecIO.cpp - Specification serialization ----------------------===//

#include "spec/SpecIO.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

namespace {

/// Reads \p Path fully; empty optional on failure.
std::optional<std::string> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buffer.str();
}

/// Writes \p Content to \p Path; returns an error message or empty.
std::string spill(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return "cannot open " + Path + " for writing";
  Out << Content;
  Out.flush();
  if (!Out)
    return "write to " + Path + " failed";
  return std::string();
}

/// Returns an error message when \p Text looks cut off mid-record: every
/// writer in this file ends each record (and the file) with '\n', so a
/// non-empty file without a trailing newline was truncated.
std::string truncationError(const std::string &Path,
                            const std::string &Text) {
  if (!Text.empty() && Text.back() != '\n')
    return Path + " is truncated (no newline after the last record)";
  return std::string();
}

/// Folds per-line parse errors into one descriptive load error.
std::string corruptionError(const std::string &Path,
                            const std::vector<std::string> &Errors) {
  if (Errors.empty())
    return std::string();
  std::string Msg =
      Path + " is corrupt (" + formatString("%zu", Errors.size()) +
      " malformed record" + (Errors.size() == 1 ? "" : "s") +
      "): " + Errors.front();
  if (Errors.size() > 1)
    Msg += formatString(" (+%zu more)", Errors.size() - 1);
  return Msg;
}

} // namespace

IOResult<SeedSpec> seldon::spec::loadSeedSpec(const std::string &Path) {
  std::optional<std::string> Text = slurp(Path);
  if (!Text)
    return IOResult<SeedSpec>::failure("cannot read seed spec " + Path);
  if (std::string Err = truncationError(Path, *Text); !Err.empty())
    return IOResult<SeedSpec>::failure(std::move(Err));
  std::vector<std::string> Errors;
  SeedSpec Parsed = SeedSpec::parse(*Text, &Errors);
  if (std::string Err = corruptionError(Path, Errors); !Err.empty())
    return IOResult<SeedSpec>::failure(std::move(Err));
  IOResult<SeedSpec> Result;
  Result.Value = std::move(Parsed);
  return Result;
}

IOResult<LearnedSpec> seldon::spec::loadLearnedSpec(const std::string &Path) {
  std::optional<std::string> Text = slurp(Path);
  if (!Text)
    return IOResult<LearnedSpec>::failure("cannot read spec " + Path);
  if (std::string Err = truncationError(Path, *Text); !Err.empty())
    return IOResult<LearnedSpec>::failure(std::move(Err));
  std::vector<std::string> Errors;
  LearnedSpec Parsed = parseLearnedSpec(*Text, &Errors);
  if (std::string Err = corruptionError(Path, Errors); !Err.empty())
    return IOResult<LearnedSpec>::failure(std::move(Err));
  IOResult<LearnedSpec> Result;
  Result.Value = std::move(Parsed);
  return Result;
}

IOResult<size_t> seldon::spec::saveSeedSpec(const SeedSpec &Seed,
                                            const std::string &Path) {
  std::string Text = writeSeedSpec(Seed);
  if (std::string Err = spill(Path, Text); !Err.empty())
    return IOResult<size_t>::failure(std::move(Err));
  IOResult<size_t> Result;
  Result.Value = Text.size();
  return Result;
}

IOResult<size_t> seldon::spec::saveLearnedSpec(const LearnedSpec &Learned,
                                               const std::string &Path,
                                               double MinScore) {
  std::string Text = writeLearnedSpec(Learned, MinScore);
  if (std::string Err = spill(Path, Text); !Err.empty())
    return IOResult<size_t>::failure(std::move(Err));
  IOResult<size_t> Result;
  Result.Value = Text.size();
  return Result;
}

std::string seldon::spec::writeSeedSpec(const SeedSpec &Seed) {
  std::string Out;
  struct Section {
    Role R;
    char Prefix;
    const char *Header;
  };
  static const Section Sections[] = {
      {Role::Source, 'o', "# Sources"},
      {Role::Sanitizer, 'a', "# Sanitizers"},
      {Role::Sink, 'i', "# Sinks"},
  };
  for (const Section &S : Sections) {
    std::vector<std::string> Reps = Seed.Spec.sortedReps(S.R);
    if (Reps.empty())
      continue;
    Out += S.Header;
    Out += '\n';
    for (const std::string &Rep : Reps) {
      Out += S.Prefix;
      Out += ": ";
      Out += Rep;
      Out += '\n';
    }
    Out += '\n';
  }
  if (!Seed.Blacklist.empty()) {
    Out += "# Blacklist\n";
    for (const std::string &Pattern : Seed.Blacklist.patterns()) {
      Out += "b: ";
      Out += Pattern;
      Out += '\n';
    }
  }
  return Out;
}

std::string seldon::spec::writeLearnedSpec(const LearnedSpec &Learned,
                                           double MinScore) {
  std::string Out = "# seldon learned specification\n"
                    "# <role> <score> <representation>\n";
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink})
    for (const auto &[Rep, Score] : Learned.ranked(R, MinScore))
      Out += formatString("%s %.6f %s\n", roleName(R), Score, Rep.c_str());
  return Out;
}

LearnedSpec
seldon::spec::parseLearnedSpec(std::string_view Text,
                               std::vector<std::string> *ErrorsOut) {
  LearnedSpec Out;
  size_t LineNo = 0;
  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNo;
    std::string_view Line = trim(RawLine);
    if (Line.empty() || Line.front() == '#')
      continue;
    size_t Sp1 = Line.find(' ');
    size_t Sp2 = Sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : Line.find(' ', Sp1 + 1);
    if (Sp2 == std::string_view::npos) {
      if (ErrorsOut)
        ErrorsOut->push_back(
            formatString("line %zu: expected '<role> <score> <rep>'",
                         LineNo));
      continue;
    }
    std::string RoleStr(Line.substr(0, Sp1));
    std::string ScoreStr(Line.substr(Sp1 + 1, Sp2 - Sp1 - 1));
    std::string Rep(trim(Line.substr(Sp2 + 1)));

    Role R;
    if (RoleStr == "source")
      R = Role::Source;
    else if (RoleStr == "sanitizer")
      R = Role::Sanitizer;
    else if (RoleStr == "sink")
      R = Role::Sink;
    else {
      if (ErrorsOut)
        ErrorsOut->push_back(
            formatString("line %zu: unknown role '%s'", LineNo,
                         RoleStr.c_str()));
      continue;
    }
    char *End = nullptr;
    double Score = std::strtod(ScoreStr.c_str(), &End);
    if (End == ScoreStr.c_str() || *End != '\0' || Score < 0.0 ||
        Score > 1.0) {
      if (ErrorsOut)
        ErrorsOut->push_back(formatString("line %zu: bad score '%s'", LineNo,
                                          ScoreStr.c_str()));
      continue;
    }
    if (Rep.empty()) {
      if (ErrorsOut)
        ErrorsOut->push_back(
            formatString("line %zu: empty representation", LineNo));
      continue;
    }
    Out.setScore(Rep, R, Score);
  }
  return Out;
}

SpecDiff seldon::spec::diffLearnedSpecs(const LearnedSpec &Old,
                                        const LearnedSpec &New,
                                        double Threshold,
                                        double DriftDelta) {
  SpecDiff Out;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    for (const auto &[Rep, NewScore] : New.ranked(R, 0.0)) {
      double OldScore = Old.score(Rep, R);
      bool InNew = NewScore >= Threshold;
      bool InOld = OldScore >= Threshold;
      if (InNew && !InOld)
        Out.Added.emplace_back(Rep, R);
      else if (InNew && InOld &&
               std::abs(NewScore - OldScore) >= DriftDelta)
        Out.Drifted.emplace_back(Rep, R, OldScore, NewScore);
    }
    for (const auto &[Rep, OldScore] : Old.ranked(R, 0.0)) {
      if (OldScore < Threshold)
        continue;
      if (New.score(Rep, R) < Threshold)
        Out.Removed.emplace_back(Rep, R);
    }
  }
  auto ByRoleThenRep = [](const auto &A, const auto &B) {
    if (std::get<1>(A) != std::get<1>(B))
      return std::get<1>(A) < std::get<1>(B);
    return std::get<0>(A) < std::get<0>(B);
  };
  std::sort(Out.Added.begin(), Out.Added.end(), ByRoleThenRep);
  std::sort(Out.Removed.begin(), Out.Removed.end(), ByRoleThenRep);
  std::sort(Out.Drifted.begin(), Out.Drifted.end(), ByRoleThenRep);
  return Out;
}

std::string seldon::spec::renderSpecDiff(const SpecDiff &Diff) {
  std::string Out;
  for (const auto &[Rep, R] : Diff.Added)
    Out += formatString("+ %s %s\n", roleName(R), Rep.c_str());
  for (const auto &[Rep, R] : Diff.Removed)
    Out += formatString("- %s %s\n", roleName(R), Rep.c_str());
  for (const auto &[Rep, R, OldScore, NewScore] : Diff.Drifted)
    Out += formatString("~ %s %s  %.3f -> %.3f\n", roleName(R),
                        Rep.c_str(), OldScore, NewScore);
  return Out;
}
