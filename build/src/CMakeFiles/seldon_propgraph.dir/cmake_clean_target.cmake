file(REMOVE_RECURSE
  "libseldon_propgraph.a"
)
