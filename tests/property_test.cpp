//===- tests/property_test.cpp - Cross-module property sweeps -------------===//
//
// Property-style invariants checked across randomized inputs: generated
// corpora must always parse, build acyclic graphs, and produce well-formed
// constraint systems; the pipeline must be bit-deterministic; the lexer
// must terminate with sane positions on arbitrary printable inputs; BP and
// Gibbs must agree on random tree-shaped factor graphs.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "constraints/ConstraintGen.h"
#include "corpus/CorpusGenerator.h"
#include "infer/Pipeline.h"
#include "merlin/GibbsSampler.h"
#include "merlin/LoopyBeliefPropagation.h"
#include "propgraph/GraphBuilder.h"
#include "pyast/Lexer.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

//===----------------------------------------------------------------------===//
// Corpus -> graph -> constraints invariants, swept over generator seeds
//===----------------------------------------------------------------------===//

class CorpusSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusSweepTest, EndToEndInvariants) {
  corpus::Corpus Data = testutil::makeCorpus(GetParam());

  PropagationGraph Global;
  for (const pysem::Project &P : Data.Projects) {
    EXPECT_EQ(P.numErrors(), 0u) << "corpus seed " << GetParam();
    PropagationGraph G = buildProjectGraph(P);
    EXPECT_TRUE(G.isAcyclic());
    Global.append(G);
  }

  // Every event: non-empty reps, sane candidates, valid file index.
  for (const Event &E : Global.events()) {
    EXPECT_FALSE(E.Reps.empty());
    EXPECT_NE(E.Candidates, 0);
    EXPECT_LT(E.FileIdx, Global.files().size());
    if (E.Kind != EventKind::Call) {
      EXPECT_EQ(E.Candidates, SourceMask);
    }
  }

  // Edge symmetry: successors/predecessors agree.
  size_t SuccCount = 0, PredCount = 0;
  for (const Event &E : Global.events()) {
    SuccCount += Global.successors(E.Id).size();
    PredCount += Global.predecessors(E.Id).size();
  }
  EXPECT_EQ(SuccCount, PredCount);
  EXPECT_EQ(SuccCount, Global.numEdges());

  // Constraint system: every term references a live variable; coefficients
  // are positive and at most 1 (backoff averages).
  RepTable Reps;
  Reps.countOccurrences(Global);
  constraints::ConstraintSystem Sys =
      constraints::generateConstraints(Global, Reps, Data.Seed);
  for (const solver::LinearConstraint &C : Sys.Constraints) {
    EXPECT_FALSE(C.Lhs.empty());
    EXPECT_DOUBLE_EQ(C.C, 0.75);
    for (const solver::Term &T : C.Lhs) {
      EXPECT_LT(T.Var, Sys.Vars.numVars());
      EXPECT_GT(T.Coef, 0.0f);
      EXPECT_LE(T.Coef, 1.0f);
    }
    for (const solver::Term &T : C.Rhs)
      EXPECT_LT(T.Var, Sys.Vars.numVars());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Pipeline determinism
//===----------------------------------------------------------------------===//

TEST(DeterminismTest, PipelineIsBitDeterministic) {
  auto RunOnce = [] {
    corpus::Corpus Data = testutil::makeCorpus(77, /*NumProjects=*/10);
    infer::PipelineOptions P;
    P.Solve.MaxIterations = 300;
    infer::Session S(P);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    return S.solve();
  };
  infer::PipelineResult A = RunOnce();
  infer::PipelineResult B = RunOnce();
  ASSERT_EQ(A.Solve.X.size(), B.Solve.X.size());
  for (size_t I = 0; I < A.Solve.X.size(); ++I)
    EXPECT_DOUBLE_EQ(A.Solve.X[I], B.Solve.X[I]) << "variable " << I;
  EXPECT_EQ(A.System.Constraints.size(), B.System.Constraints.size());
  EXPECT_EQ(A.Graph.numEvents(), B.Graph.numEvents());
  EXPECT_EQ(A.Graph.numEdges(), B.Graph.numEdges());
}

//===----------------------------------------------------------------------===//
// Lexer robustness on arbitrary printable inputs
//===----------------------------------------------------------------------===//

class LexerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LexerFuzzTest, TerminatesWithMonotonicPositions) {
  Rng Random(GetParam());
  // Printable soup with structural characters over-represented.
  static const char Alphabet[] =
      "abcdefXYZ0189_ ()[]{}:.,+-*/%<>=!&|^~#'\"\\\n\t";
  std::string Source;
  size_t Length = 64 + Random.nextBelow(512);
  for (size_t I = 0; I < Length; ++I)
    Source += Alphabet[Random.nextBelow(sizeof(Alphabet) - 1)];

  pyast::Lexer Lexer(Source);
  std::vector<pyast::Token> Tokens = Lexer.lexAll();
  ASSERT_FALSE(Tokens.empty());
  EXPECT_EQ(Tokens.back().Kind, pyast::TokenKind::EndOfFile);
  uint32_t PrevLine = 1;
  for (const pyast::Token &T : Tokens) {
    EXPECT_GE(T.Line, PrevLine);
    PrevLine = std::max(PrevLine, T.Line);
    EXPECT_GE(T.Col, 1u);
  }
  // Parsing the soup must terminate too (errors are fine, hangs are not).
  pyast::AstContext Ctx;
  std::vector<pyast::ParseError> Errors;
  pyast::ModuleNode *M = pyast::parseSource(Ctx, Source, &Errors);
  EXPECT_NE(M, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerFuzzTest,
                         ::testing::Range<uint64_t>(100, 140));

//===----------------------------------------------------------------------===//
// BP vs Gibbs on random tree factor graphs (BP is exact on trees)
//===----------------------------------------------------------------------===//

class InferenceAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InferenceAgreementTest, BpMatchesGibbsOnTrees) {
  Rng Random(GetParam());
  merlin::FactorGraph G;
  int NumVars = 4 + static_cast<int>(Random.nextBelow(4));
  std::vector<merlin::VarIdx> Vars;
  for (int I = 0; I < NumVars; ++I) {
    merlin::VarIdx V = G.addVar("v" + std::to_string(I));
    double P1 = 0.2 + 0.6 * Random.nextDouble();
    G.addUnary(V, 1.0 - P1, P1);
    Vars.push_back(V);
  }
  // Tree topology: each var (except the root) gets one pairwise factor to
  // a random earlier var.
  for (int I = 1; I < NumVars; ++I) {
    merlin::VarIdx Parent = Vars[Random.nextBelow(I)];
    double Penalty = 0.1 + 0.5 * Random.nextDouble();
    G.addFactor(merlin::Factor{{Parent, Vars[I]},
                               {1.0, 1.0, 1.0, Penalty}});
  }

  merlin::LoopyBeliefPropagation Bp;
  merlin::InferenceResult RB = Bp.run(G);
  EXPECT_TRUE(RB.Converged);

  merlin::GibbsOptions GO;
  GO.BurnIn = 300;
  GO.Samples = 6000;
  GO.Seed = GetParam() * 31 + 7;
  merlin::GibbsSampler Gibbs(GO);
  merlin::InferenceResult RG = Gibbs.run(G);

  for (int I = 0; I < NumVars; ++I)
    EXPECT_NEAR(RB.Marginals[Vars[I]], RG.Marginals[Vars[I]], 0.06)
        << "var " << I << " seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceAgreementTest,
                         ::testing::Values(11, 22, 33, 44, 55));

} // namespace
