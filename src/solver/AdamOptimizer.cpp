//===- solver/AdamOptimizer.cpp - Projected Adam descent ------------------===//

#include "solver/AdamOptimizer.h"

#include "solver/CompiledObjective.h"
#include "solver/SolveTelemetry.h"

#include <cmath>

using namespace seldon;
using namespace seldon::solver;

template <class ObjT>
SolveResult AdamOptimizer::minimize(const ObjT &Obj) const {
  return minimize(Obj, Obj.initialPoint());
}

template <class ObjT>
SolveResult AdamOptimizer::minimize(const ObjT &Obj,
                                    std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  const size_t N = Obj.numVars();
  std::vector<double> M(N, 0.0), V(N, 0.0), Grad, Mapped;
  SolveTelemetry Telemetry;
  // The only constraint evaluation per iteration: one fused call yields
  // both the objective value at the current iterate and its subgradient.
  double Value = Obj.valueAndGradient(Result.X, Grad);
  std::vector<double> Best = Result.X;
  double BestValue = Value;
  // Bias-correction powers β₁ᵗ/β₂ᵗ, maintained incrementally instead of
  // calling std::pow every iteration.
  double Beta1T = 1.0, Beta2T = 1.0;

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    // Stationarity test via the projected-gradient mapping: at a solution,
    // a plain projected step does not move the iterate. (Comparing
    // objective values is unreliable here: an iterate pinned to the box
    // boundary by leftover momentum keeps the objective constant without
    // being optimal.) The probe reuses the gradient of the fused call —
    // no extra constraint sweep.
    Mapped = Result.X;
    for (size_t I = 0; I < N; ++I)
      Mapped[I] -= Options.LearningRate * Grad[I];
    Obj.project(Mapped);
    double StepNorm = 0.0;
    for (size_t I = 0; I < N; ++I)
      StepNorm = std::max(StepNorm, std::abs(Mapped[I] - Result.X[I]));
    if (StepNorm < Options.Tolerance) {
      Result.Converged = true;
      Result.Iterations = Iter;
      Telemetry.onIteration(Iter, Value, Grad);
      if (Options.OnIteration)
        Options.OnIteration(Iter, Value);
      break;
    }

    Beta1T *= Options.Beta1;
    Beta2T *= Options.Beta2;
    for (size_t I = 0; I < N; ++I) {
      M[I] = Options.Beta1 * M[I] + (1.0 - Options.Beta1) * Grad[I];
      V[I] = Options.Beta2 * V[I] + (1.0 - Options.Beta2) * Grad[I] * Grad[I];
      double MHat = M[I] / (1.0 - Beta1T);
      double VHat = V[I] / (1.0 - Beta2T);
      Result.X[I] -=
          Options.LearningRate * MHat / (std::sqrt(VHat) + Options.Epsilon);
    }
    Obj.project(Result.X);
    Result.Iterations = Iter;

    Value = Obj.valueAndGradient(Result.X, Grad);
    // Subgradient iterations are not monotone; keep the best point seen.
    if (Value < BestValue) {
      BestValue = Value;
      Best = Result.X;
      Telemetry.onBestUpdate();
    }
    Telemetry.onIteration(Iter, Value, Grad);
    if (Options.OnIteration)
      Options.OnIteration(Iter, Value);
  }

  // Value is the objective at the final iterate: the loop left it there
  // after the last step (or at the initial point when the loop never ran).
  if (Value <= BestValue) {
    Result.FinalObjective = Value;
  } else {
    Result.X = std::move(Best);
    Result.FinalObjective = BestValue;
  }
  return Result;
}

namespace seldon {
namespace solver {

template SolveResult AdamOptimizer::minimize<Objective>(const Objective &)
    const;
template SolveResult
AdamOptimizer::minimize<Objective>(const Objective &,
                                   std::vector<double>) const;
template SolveResult
AdamOptimizer::minimize<CompiledObjective>(const CompiledObjective &) const;
template SolveResult
AdamOptimizer::minimize<CompiledObjective>(const CompiledObjective &,
                                           std::vector<double>) const;

} // namespace solver
} // namespace seldon
