
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/ConstraintGen.cpp" "src/CMakeFiles/seldon_constraints.dir/constraints/ConstraintGen.cpp.o" "gcc" "src/CMakeFiles/seldon_constraints.dir/constraints/ConstraintGen.cpp.o.d"
  "/root/repo/src/constraints/ConstraintSystem.cpp" "src/CMakeFiles/seldon_constraints.dir/constraints/ConstraintSystem.cpp.o" "gcc" "src/CMakeFiles/seldon_constraints.dir/constraints/ConstraintSystem.cpp.o.d"
  "/root/repo/src/constraints/Explain.cpp" "src/CMakeFiles/seldon_constraints.dir/constraints/Explain.cpp.o" "gcc" "src/CMakeFiles/seldon_constraints.dir/constraints/Explain.cpp.o.d"
  "/root/repo/src/constraints/VarTable.cpp" "src/CMakeFiles/seldon_constraints.dir/constraints/VarTable.cpp.o" "gcc" "src/CMakeFiles/seldon_constraints.dir/constraints/VarTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seldon_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_propgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pysem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pyast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
