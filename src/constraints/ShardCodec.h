//===- constraints/ShardCodec.h - Binary shard serialization -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, versioned, checksummed binary serialization of per-project
/// constraint shards (ConstraintShard.h) — the persistence format behind
/// cache::ShardCache, in the GraphCodec style.
///
/// Layout (all integers varint-encoded unless noted):
///
///   magic      4 bytes  "SCSH"
///   version    varint   ShardCodecVersion
///   checksum   8 bytes  FNV-1a-64 of the payload, little-endian
///   length     varint   payload size in bytes
///   payload:
///     strings  count, then per string: length-prefixed bytes
///     events   count, then per event: rep count (>= 1), rep string ids
///              (most to least specific)
///     files    count, then per file:
///       san anchors  count, then per anchor: san event id,
///                    |sources before| + ids, |sinks after| + ids
///                    (at least one of the two lists non-empty)
///       src anchors  count, then per anchor: src event id,
///                    pair count (>= 1), per pair: sink event id,
///                    mid count + mid event ids
///
/// The encoding is *canonical*: encode(decode(encode(S))) == encode(S)
/// byte for byte, so a cache-hit shard replays into exactly the same
/// constraint system as the freshly extracted one.
///
/// Decoding is *strict* in the GraphCodec sense: any truncation, bit flip,
/// version skew, or out-of-range reference yields a descriptive
/// io::IOResult error with an empty shard — never a partial one.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_SHARDCODEC_H
#define SELDON_CONSTRAINTS_SHARDCODEC_H

#include "constraints/ConstraintShard.h"
#include "support/IOResult.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace seldon {
namespace constraints {

/// Current shard format version. Bump on any layout change; the decoder
/// rejects every other version (the shard cache then rebuilds).
inline constexpr uint32_t ShardCodecVersion = 1;

/// Serializes \p Shard into the format described above.
std::string encodeShard(const ConstraintShard &Shard);

/// Strictly parses \p Bytes. On failure the result's Error describes the
/// first problem (including the byte offset where parsing stopped) and the
/// Value is an empty shard.
io::IOResult<ConstraintShard> decodeShard(std::string_view Bytes);

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_SHARDCODEC_H
