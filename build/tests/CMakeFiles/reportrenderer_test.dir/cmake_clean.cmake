file(REMOVE_RECURSE
  "CMakeFiles/reportrenderer_test.dir/reportrenderer_test.cpp.o"
  "CMakeFiles/reportrenderer_test.dir/reportrenderer_test.cpp.o.d"
  "reportrenderer_test"
  "reportrenderer_test.pdb"
  "reportrenderer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reportrenderer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
