//===- service/QueryResult.h - Point-query results ---------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured answer to the service's point query: "what role does
/// representation R have, and which constraints support it?". One struct,
/// two renderers — the JSON renderer is the `seldond` wire format *and*
/// the `seldon explain --json` output, and the text renderer is the
/// human-readable `seldon explain` table. Because both the CLI and the
/// daemon render the same struct through the same functions, a warm
/// daemon's `query` answer is byte-identical to a cold CLI run on the
/// same corpus, and the two front-ends cannot drift.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_QUERYRESULT_H
#define SELDON_SERVICE_QUERYRESULT_H

#include "constraints/ConstraintSystem.h"

#include <string>
#include <vector>

namespace seldon {
namespace service {

/// One constraint supporting (or capping) a queried score.
struct QueryConstraint {
  /// Rendered `lhs <= rhs + C` text (constraints::renderConstraint).
  std::string Text;
  /// L - R - C under the solved assignment (> 0 means still violated).
  double Residual = 0.0;
  /// True when the queried variable sits on the left-hand side (the
  /// constraint caps the score); false when it sits on the right (the
  /// constraint demands it).
  bool Caps = false;
};

/// Everything known about one (representation, role) score.
struct QueryResult {
  std::string Rep;
  propgraph::Role Role = propgraph::Role::Source;
  /// False when the pair has no variable (blacklisted, below the
  /// frequency cutoff, or never a candidate); all other fields are then
  /// zero/empty.
  bool Found = false;
  double Score = 0.0;
  bool Pinned = false;
  double PinnedValue = 0.0;
  std::vector<QueryConstraint> Constraints;
};

/// Parses a wire/CLI role name ("source", "sanitizer", "sink") into
/// \p Out. Returns false for anything else.
bool roleFromName(const std::string &Name, propgraph::Role &Out);

/// Answers the point query against a solved system: looks up
/// (\p Rep, \p Role), renders every constraint mentioning its variable,
/// and computes residuals under \p X (the solved assignment, indexed by
/// the system's variable ids).
QueryResult queryRep(const constraints::ConstraintSystem &System,
                     const propgraph::RepTable &Reps, const std::string &Rep,
                     propgraph::Role Role, const std::vector<double> &X);

/// The machine-readable rendering (single line, no trailing newline):
///
///   {"rep":"...","role":"sanitizer","found":true,"score":0.750000,
///    "pinned":true,"pinned_value":1.000000,
///    "constraints":[{"kind":"demands","residual":-0.250000,"text":"..."}]}
///
/// Scores and residuals print at fixed %.6f (the same precision as
/// spec::writeLearnedSpec), so the output is byte-stable across runs.
std::string renderQueryJson(const QueryResult &Q);

/// The human-readable rendering (the classic `seldon explain` output):
///
///   mid.filter() as sanitizer: score 0.457
///   3 constraint(s) mention it:
///     [demands it, residual -0.123] ... <= ... + 0.75
std::string renderQueryText(const QueryResult &Q);

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_QUERYRESULT_H
