# Empty compiler generated dependencies file for ablation_collapsed.
# This may be replaced when dependencies are built.
