# Empty compiler generated dependencies file for seldon_solver.
# This may be replaced when dependencies are built.
