# Empty dependencies file for expert_review.
# This may be replaced when dependencies are built.
