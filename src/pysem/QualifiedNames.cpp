//===- pysem/QualifiedNames.cpp - Import-aware name resolution ------------===//

#include "pysem/QualifiedNames.h"

#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::pysem;
using namespace seldon::pyast;

std::string seldon::pysem::stripRelativeLevels(const std::string &ModuleName,
                                               unsigned Level) {
  if (Level == 0)
    return ModuleName;
  std::vector<std::string> Parts = splitString(ModuleName, '.');
  // One dot refers to the current package, i.e. drops the module component.
  size_t Drop = std::min<size_t>(Level, Parts.size());
  Parts.resize(Parts.size() - Drop);
  return joinStrings(Parts, ".");
}

void ImportMap::bind(std::string LocalName, std::string QualifiedPrefix) {
  Bindings[std::move(LocalName)] = std::move(QualifiedPrefix);
}

std::optional<std::string>
ImportMap::resolveRoot(const std::string &LocalName) const {
  auto It = Bindings.find(LocalName);
  if (It == Bindings.end())
    return std::nullopt;
  return It->second;
}

void ImportMap::build(const ModuleNode *Module, const std::string &ModuleName) {
  scanStatements(Module->Body, ModuleName);
}

void ImportMap::scanStatements(const std::vector<Stmt *> &Body,
                               const std::string &ModuleName) {
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case NodeKind::Import: {
      for (const ImportAlias &A : cast<ImportStmt>(S)->Names) {
        if (A.Module.empty())
          continue;
        if (!A.AsName.empty()) {
          bind(A.AsName, A.Module);
        } else {
          // `import os.path` binds the name `os`; deeper components resolve
          // through attribute chains.
          std::string Root = splitString(A.Module, '.').front();
          bind(Root, Root);
        }
      }
      break;
    }
    case NodeKind::ImportFrom: {
      const auto *I = cast<ImportFromStmt>(S);
      std::string Base = I->Level > 0
                             ? stripRelativeLevels(ModuleName, I->Level)
                             : std::string();
      if (!I->Module.empty()) {
        if (!Base.empty())
          Base += '.';
        Base += I->Module;
      }
      for (const ImportAlias &A : I->Names) {
        if (A.Module == "*")
          continue; // Star imports bind unknown names.
        std::string Qualified = Base.empty() ? A.Module : Base + "." + A.Module;
        bind(A.AsName.empty() ? A.Module : A.AsName, std::move(Qualified));
      }
      break;
    }
    case NodeKind::If: {
      const auto *I = cast<IfStmt>(S);
      scanStatements(I->Then, ModuleName);
      scanStatements(I->Else, ModuleName);
      break;
    }
    case NodeKind::Try: {
      // `try: import fast_json as json / except ImportError: import json`
      // is a common idiom; take bindings from all branches (later wins).
      const auto *T = cast<TryStmt>(S);
      scanStatements(T->Body, ModuleName);
      for (const ExceptHandler &H : T->Handlers)
        scanStatements(H.Body, ModuleName);
      scanStatements(T->OrElse, ModuleName);
      scanStatements(T->Finally, ModuleName);
      break;
    }
    case NodeKind::While:
      scanStatements(cast<WhileStmt>(S)->Body, ModuleName);
      break;
    case NodeKind::For:
      scanStatements(cast<ForStmt>(S)->Body, ModuleName);
      break;
    case NodeKind::With:
      scanStatements(cast<WithStmt>(S)->Body, ModuleName);
      break;
    case NodeKind::FunctionDef:
      scanStatements(cast<FunctionDefStmt>(S)->Body, ModuleName);
      break;
    case NodeKind::ClassDef:
      scanStatements(cast<ClassDefStmt>(S)->Body, ModuleName);
      break;
    default:
      break;
    }
  }
}

std::string seldon::pysem::resolveDottedName(const ImportMap &Imports,
                                             const Expr *E) {
  // Collect the attribute chain bottom-up, then resolve the root.
  std::vector<const std::string *> Attrs;
  const Expr *Cur = E;
  while (const auto *A = dyn_cast<AttributeExpr>(Cur)) {
    Attrs.push_back(&A->Attr);
    Cur = A->Value;
  }
  const auto *Root = dyn_cast<NameExpr>(Cur);
  if (!Root)
    return std::string();

  std::string Out;
  if (std::optional<std::string> Resolved = Imports.resolveRoot(Root->Id))
    Out = *Resolved;
  else
    Out = Root->Id;
  for (auto It = Attrs.rbegin(); It != Attrs.rend(); ++It) {
    Out += '.';
    Out += **It;
  }
  return Out;
}
