file(REMOVE_RECURSE
  "CMakeFiles/fstring_test.dir/fstring_test.cpp.o"
  "CMakeFiles/fstring_test.dir/fstring_test.cpp.o.d"
  "fstring_test"
  "fstring_test.pdb"
  "fstring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fstring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
