# Empty dependencies file for find_vulnerabilities.
# This may be replaced when dependencies are built.
