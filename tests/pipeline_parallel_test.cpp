//===- tests/pipeline_parallel_test.cpp - Parallel == serial --------------===//
//
// The contract of the parallel pipeline: for any Jobs value the output is
// bit-identical to the serial run. These tests drive a generated corpus
// through the staged Session API with Jobs=1 and Jobs=4 and demand exact
// equality of the constraint system, the solve trace, and the learned
// specification, plus the staged-reuse and observer behaviour that the
// Session API adds.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGenerator.h"
#include "infer/Pipeline.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

using namespace seldon;
using namespace seldon::infer;

namespace {

corpus::Corpus smallCorpus() {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = 24;
  Opts.Seed = 7;
  return corpus::generateCorpus(Opts);
}

PipelineOptions testOptions(unsigned Jobs) {
  PipelineOptions Opts;
  Opts.Solve.MaxIterations = 400;
  Opts.Jobs = Jobs;
  return Opts;
}

PipelineResult runWithJobs(const corpus::Corpus &Data, unsigned Jobs) {
  Session S(testOptions(Jobs));
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  return S.solve();
}

TEST(PipelineParallelTest, FourJobsBitIdenticalToSerial) {
  corpus::Corpus Data = smallCorpus();
  PipelineResult Serial = runWithJobs(Data, 1);
  PipelineResult Parallel = runWithJobs(Data, 4);

  EXPECT_EQ(Serial.JobsUsed, 1u);
  EXPECT_EQ(Parallel.JobsUsed, 4u);

  // Identical structure: graph, variable table, constraint system.
  ASSERT_EQ(Serial.Graph.events().size(), Parallel.Graph.events().size());
  ASSERT_EQ(Serial.System.Vars.numVars(), Parallel.System.Vars.numVars());
  for (uint32_t V = 0; V < Serial.System.Vars.numVars(); ++V) {
    EXPECT_EQ(Serial.System.Vars.repOf(V), Parallel.System.Vars.repOf(V));
    EXPECT_EQ(Serial.System.Vars.roleOf(V), Parallel.System.Vars.roleOf(V));
  }
  ASSERT_EQ(Serial.System.Constraints.size(),
            Parallel.System.Constraints.size());
  for (size_t I = 0; I < Serial.System.Constraints.size(); ++I) {
    const solver::LinearConstraint &A = Serial.System.Constraints[I];
    const solver::LinearConstraint &B = Parallel.System.Constraints[I];
    ASSERT_EQ(A.Lhs.size(), B.Lhs.size()) << "constraint " << I;
    ASSERT_EQ(A.Rhs.size(), B.Rhs.size()) << "constraint " << I;
    for (size_t T = 0; T < A.Lhs.size(); ++T) {
      EXPECT_EQ(A.Lhs[T].Var, B.Lhs[T].Var);
      EXPECT_EQ(A.Lhs[T].Coef, B.Lhs[T].Coef);
    }
    for (size_t T = 0; T < A.Rhs.size(); ++T) {
      EXPECT_EQ(A.Rhs[T].Var, B.Rhs[T].Var);
      EXPECT_EQ(A.Rhs[T].Coef, B.Rhs[T].Coef);
    }
  }
  EXPECT_EQ(Serial.System.Pinned, Parallel.System.Pinned);

  // Identical solve trace and scores — not merely close: bit-identical.
  EXPECT_EQ(Serial.Solve.Iterations, Parallel.Solve.Iterations);
  ASSERT_EQ(Serial.Solve.X.size(), Parallel.Solve.X.size());
  for (size_t I = 0; I < Serial.Solve.X.size(); ++I)
    EXPECT_EQ(Serial.Solve.X[I], Parallel.Solve.X[I]) << "variable " << I;

  // And therefore a byte-identical rendered specification.
  EXPECT_EQ(spec::writeLearnedSpec(Serial.Learned),
            spec::writeLearnedSpec(Parallel.Learned));
}

TEST(PipelineParallelTest, StagedReuseSkipsReparsing) {
  corpus::Corpus Data = smallCorpus();
  Session S(testOptions(4));
  S.addProjects(Data.Projects);
  S.buildGraph();
  ASSERT_TRUE(S.hasGraph());
  size_t Events = S.graph().events().size();

  S.generateConstraints(Data.Seed);
  PipelineResult First = S.solve();

  // Sweep a generation knob without re-parsing: the graph is untouched,
  // the constraint system changes.
  S.options().Gen.RepCutoff = First.System.NumCandidates > 0 ? 10 : 5;
  S.generateConstraints(Data.Seed);
  PipelineResult Second = S.solve();

  EXPECT_EQ(S.graph().events().size(), Events);
  EXPECT_EQ(First.Graph.events().size(), Second.Graph.events().size());
  EXPECT_NE(First.System.Constraints.size(),
            Second.System.Constraints.size())
      << "raising the cutoff must change the constraint system";

  // The re-run matches a fresh session configured the same way.
  PipelineOptions FreshOpts = testOptions(1);
  FreshOpts.Gen.RepCutoff = S.options().Gen.RepCutoff;
  Session Fresh(FreshOpts);
  Fresh.addProjects(Data.Projects);
  Fresh.generateConstraints(Data.Seed);
  PipelineResult FromFresh = Fresh.solve();
  EXPECT_EQ(spec::writeLearnedSpec(Second.Learned),
            spec::writeLearnedSpec(FromFresh.Learned));
}

/// Records every callback; checks the serialization contract.
class RecordingObserver : public ProgressObserver {
public:
  void onPhase(Phase P) override { Phases.push_back(P); }

  void onProjectGraphBuilt(size_t Done, size_t Total) override {
    // Done is strictly increasing because calls are serialized.
    EXPECT_EQ(Done, LastDone + 1);
    LastDone = Done;
    LastTotal = Total;
  }

  void onSolveIteration(int Iteration, double Objective) override {
    ++SolveCalls;
    LastIteration = Iteration;
    LastObjective = Objective;
  }

  std::vector<Phase> Phases;
  size_t LastDone = 0;
  size_t LastTotal = 0;
  int SolveCalls = 0;
  int LastIteration = -1;
  double LastObjective = 0.0;
};

TEST(PipelineParallelTest, ObserverSeesAllPhasesUnderParallelFrontend) {
  corpus::Corpus Data = smallCorpus();
  Session S(testOptions(4));
  RecordingObserver Obs;
  S.setObserver(&Obs);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  PipelineResult R = S.solve();

  ASSERT_EQ(Obs.Phases.size(), 3u);
  EXPECT_EQ(Obs.Phases[0], Phase::BuildGraph);
  EXPECT_EQ(Obs.Phases[1], Phase::GenerateConstraints);
  EXPECT_EQ(Obs.Phases[2], Phase::Solve);

  EXPECT_EQ(Obs.LastTotal, Data.Projects.size());
  EXPECT_EQ(Obs.LastDone, Data.Projects.size())
      << "every project must be reported";

  EXPECT_GT(Obs.SolveCalls, 0);
  EXPECT_EQ(Obs.SolveCalls, R.Solve.Iterations);
}

TEST(PipelineParallelTest, ShardTimingsMatchWorkerCount) {
  corpus::Corpus Data = smallCorpus();
  PipelineResult R = runWithJobs(Data, 4);
  EXPECT_EQ(R.BuildShardSeconds.size(), 4u);
  EXPECT_EQ(R.GenShardSeconds.size(), 4u);
  PipelineResult Serial = runWithJobs(Data, 1);
  EXPECT_EQ(Serial.BuildShardSeconds.size(), 1u);
  EXPECT_EQ(Serial.GenShardSeconds.size(), 1u);
}

TEST(PipelineParallelTest, JobsZeroResolvesToHardwareConcurrency) {
  corpus::Corpus Data = smallCorpus();
  Session S(testOptions(0));
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  PipelineResult R = S.solve();
  EXPECT_GE(R.JobsUsed, 1u);
  PipelineResult Serial = runWithJobs(Data, 1);
  EXPECT_EQ(spec::writeLearnedSpec(R.Learned),
            spec::writeLearnedSpec(Serial.Learned));
}

} // namespace
