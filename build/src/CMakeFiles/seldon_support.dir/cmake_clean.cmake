file(REMOVE_RECURSE
  "CMakeFiles/seldon_support.dir/support/Glob.cpp.o"
  "CMakeFiles/seldon_support.dir/support/Glob.cpp.o.d"
  "CMakeFiles/seldon_support.dir/support/Rng.cpp.o"
  "CMakeFiles/seldon_support.dir/support/Rng.cpp.o.d"
  "CMakeFiles/seldon_support.dir/support/StrUtil.cpp.o"
  "CMakeFiles/seldon_support.dir/support/StrUtil.cpp.o.d"
  "CMakeFiles/seldon_support.dir/support/TablePrinter.cpp.o"
  "CMakeFiles/seldon_support.dir/support/TablePrinter.cpp.o.d"
  "libseldon_support.a"
  "libseldon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
