//===- merlin/FactorGraph.h - Binary factor graphs ---------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A factor graph over binary variables (paper §6.3): the probabilistic
/// model Merlin (Livshits et al. 2009) uses to score joint role
/// assignments, p(x) ∝ Π_s f_s(x_s). Factors are dense tables over at most
/// a handful of variables (Merlin's constraints have arity ≤ 3).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_MERLIN_FACTORGRAPH_H
#define SELDON_MERLIN_FACTORGRAPH_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace merlin {

/// Index of a binary variable.
using VarIdx = uint32_t;

/// A factor: a non-negative score table over a small set of binary
/// variables. `Table[b]` scores the assignment whose bit i of `b` is the
/// value of `Vars[i]` (variable 0 is the least-significant bit).
struct Factor {
  std::vector<VarIdx> Vars;
  std::vector<double> Table;

  size_t arity() const { return Vars.size(); }
};

/// A factor graph over binary variables.
class FactorGraph {
public:
  /// Adds a variable; \p Name is kept for debugging/reporting.
  VarIdx addVar(std::string Name);

  /// Adds \p F. The table size must be 2^arity and all entries >= 0.
  void addFactor(Factor F);

  /// Convenience: unary prior factor [P(x=0), P(x=1)].
  void addUnary(VarIdx V, double Score0, double Score1);

  size_t numVars() const { return Names.size(); }
  size_t numFactors() const { return Factors.size(); }
  const std::vector<Factor> &factors() const { return Factors; }
  const std::string &varName(VarIdx V) const { return Names[V]; }

  /// Factors touching each variable (built lazily, cached).
  const std::vector<std::vector<uint32_t>> &varToFactors() const;

private:
  std::vector<std::string> Names;
  std::vector<Factor> Factors;
  mutable std::vector<std::vector<uint32_t>> VarFactorsCache;
  mutable bool CacheValid = false;
};

} // namespace merlin
} // namespace seldon

#endif // SELDON_MERLIN_FACTORGRAPH_H
