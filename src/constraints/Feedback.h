//===- constraints/Feedback.h - Feedback-weighted inference ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// InspectJS-style feedback weighting (Dutta et al.): a user accepts or
/// rejects inferred specifications, and the verdicts reweight the
/// constraint system before the next solve. Each verdict becomes a
/// weighted evidence row over the (representation, role) score variable:
///
///   accepted (rep, role), weight w:   {} <= w*x + (-w)   — hinge w*(1-x)
///   rejected (rep, role), weight w:   w*x <= {} + 0      — hinge w*x
///
/// Both are ordinary LinearConstraints, so feedback composes with every
/// solver backend (legacy / compiled / simd) byte-identically, an empty
/// feedback set adds no rows (the passive path, byte for byte), and the
/// effect is provably monotone: a reject row only ever adds downward
/// subgradient (+w while x > 0) on its variable, an accept row only ever
/// adds upward subgradient (-w while x < 1).
///
/// Similar representations share evidence: two representations are
/// similar when they appear in the same event's surviving backoff set
/// (shared backoff prefixes — ConstraintSystem::EventReps, the product of
/// the shard merge). A deterministic propagation pass forwards each direct
/// verdict to its co-backoff representations at a decayed weight.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_FEEDBACK_H
#define SELDON_CONSTRAINTS_FEEDBACK_H

#include "constraints/ConstraintSystem.h"

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace seldon {
namespace constraints {

/// One accepted or rejected specification.
struct FeedbackEntry {
  std::string Rep;
  propgraph::Role R = propgraph::Role::Source;
  bool Accepted = false;
};

/// An accumulated set of user verdicts. Last verdict wins on repeats, and
/// entries() iterates in (rep, role) order, so the applied rows — and
/// therefore the learned spec — are independent of insertion order.
class FeedbackSet {
public:
  void accept(const std::string &Rep, propgraph::Role R) {
    Verdicts[{Rep, static_cast<int>(R)}] = true;
  }
  void reject(const std::string &Rep, propgraph::Role R) {
    Verdicts[{Rep, static_cast<int>(R)}] = false;
  }

  bool empty() const { return Verdicts.empty(); }
  size_t size() const { return Verdicts.size(); }

  /// +1 accepted, -1 rejected, 0 no verdict.
  int verdict(const std::string &Rep, propgraph::Role R) const {
    auto It = Verdicts.find({Rep, static_cast<int>(R)});
    return It == Verdicts.end() ? 0 : (It->second ? 1 : -1);
  }

  /// All verdicts in deterministic (rep, role) order.
  std::vector<FeedbackEntry> entries() const;

private:
  std::map<std::pair<std::string, int>, bool> Verdicts;
};

/// Weighting knobs of one feedback application.
struct FeedbackOptions {
  /// Evidence-row weight of a direct accept / reject verdict.
  double AcceptWeight = 1.0;
  double RejectWeight = 1.0;
  /// Weight factor applied when a verdict propagates to a co-backoff
  /// representation. 0 disables propagation entirely.
  double SimilarityDecay = 0.5;
};

/// What applyFeedback did (for responses, metrics, and tests).
struct FeedbackStats {
  /// Verdicts whose (rep, role) has a score variable in the system.
  size_t Matched = 0;
  /// Verdicts naming a representation the system never scored.
  size_t Unmatched = 0;
  /// Direct evidence rows appended.
  size_t EvidenceRows = 0;
  /// Similarity-propagated evidence rows appended.
  size_t PropagatedRows = 0;
};

/// Appends the evidence rows of \p Set to \p Sys: direct rows first, in
/// (rep, role) order, then propagated rows in (rep, role) order. A
/// propagated representation takes the strongest decayed accept and/or
/// reject evidence over all events it shares with a directly-judged
/// representation (max over events — order-independent); representations
/// with a direct verdict never receive propagated rows. Deterministic:
/// the same set and options always append the same rows in the same
/// order.
FeedbackStats applyFeedback(ConstraintSystem &Sys,
                            const propgraph::RepTable &Reps,
                            const FeedbackSet &Set,
                            const FeedbackOptions &Opts = FeedbackOptions());

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_FEEDBACK_H
