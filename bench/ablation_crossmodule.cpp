//===- bench/ablation_crossmodule.cpp - Project-level call linking --------===//
//
// The paper treats every imported function as having an unknown body
// (§5.2), so a flow sanitized inside a project-local helper module
// (`from utils import sanitize_input`) looks unsanitized and either needs
// the wrapper to be *learned* as a sanitizer or becomes a "missing
// sanitizer" false positive (Tab. 6's biggest seed-spec row). This
// beyond-paper ablation links calls to project-local modules
// (BuildOptions::CrossModuleFlows) and measures the effect on seed-only
// taint analysis.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  // Route a substantial share of sanitized flows through utils modules so
  // the linking effect is measurable.
  CorpusOpts.PUtilsSanitizer = 0.5;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::cout << "=== Ablation: project-level call linking (beyond §5.2's "
               "unknown-body imports) ===\n\n";
  TablePrinter Table({"Mode", "Seed-only reports", "Missing-sanitizer FPs",
                      "True vulnerabilities"});

  for (bool Link : {false, true}) {
    infer::PipelineOptions Opts = standardPipelineOptions();
    Opts.Build.CrossModuleFlows = Link;

    propgraph::PropagationGraph Graph;
    for (const pysem::Project &P : Data.Projects)
      Graph.append(propgraph::buildProjectGraph(P, Opts.Build));

    taint::RoleResolver Roles(&Data.Seed.Spec, nullptr);
    taint::TaintAnalyzer Analyzer(Graph);
    auto Reports = Analyzer.analyze(Roles);
    ReportBreakdown B =
        classifyReports(Graph, Reports, Data.Truth, Data.Flows);

    Table.addRow(
        {Link ? "Linked project modules" : "Unknown-body imports (paper)",
         std::to_string(Reports.size()),
         std::to_string(B.count(ReportCategory::MissingSanitizer)),
         std::to_string(B.count(ReportCategory::TrueVulnerability))});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: linking exposes the sanitized paths "
               "inside utils modules, so the\nseed specification's "
               "missing-sanitizer false positives shrink while true\n"
               "vulnerabilities are preserved. (Learning remains the "
               "paper's answer for *library*\nsanitizers, which have no "
               "body in the corpus at all.)\n";
  return 0;
}
