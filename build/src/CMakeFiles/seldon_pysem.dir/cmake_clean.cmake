file(REMOVE_RECURSE
  "CMakeFiles/seldon_pysem.dir/pysem/Project.cpp.o"
  "CMakeFiles/seldon_pysem.dir/pysem/Project.cpp.o.d"
  "CMakeFiles/seldon_pysem.dir/pysem/ProjectLoader.cpp.o"
  "CMakeFiles/seldon_pysem.dir/pysem/ProjectLoader.cpp.o.d"
  "CMakeFiles/seldon_pysem.dir/pysem/QualifiedNames.cpp.o"
  "CMakeFiles/seldon_pysem.dir/pysem/QualifiedNames.cpp.o.d"
  "CMakeFiles/seldon_pysem.dir/pysem/ScopeBuilder.cpp.o"
  "CMakeFiles/seldon_pysem.dir/pysem/ScopeBuilder.cpp.o.d"
  "libseldon_pysem.a"
  "libseldon_pysem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_pysem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
