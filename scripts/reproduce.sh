#!/usr/bin/env bash
# Reproduces every table and figure of the paper's evaluation.
#
# Usage: scripts/reproduce.sh [results-dir]
# Knobs: SELDON_PROJECTS (corpus size, default 300), SELDON_SEED,
#        SELDON_SOLVER_ITERS, SELDON_MERLIN_TIMEOUT.
set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS="${1:-results}"
mkdir -p "$RESULTS"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$RESULTS/tests.txt"

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "=== $name ==="
  "$b" | tee "$RESULTS/$name.txt"
  echo
done

echo "All outputs written to $RESULTS/"
