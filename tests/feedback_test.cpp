//===- tests/feedback_test.cpp - Feedback-weighted inference --------------===//
//
// The feedback evidence rows (constraints/Feedback.h): exact row shapes,
// subgradient-level monotonicity (a reject only ever adds downward pull,
// an accept only upward), propagation strictly along shared backoff sets,
// byte-identity of the empty-feedback path with the passive solve, and
// byte-identity of feedback-weighted solves across solver backends.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "constraints/Feedback.h"
#include "infer/Pipeline.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace seldon;
using namespace seldon::constraints;

namespace {

//===----------------------------------------------------------------------===//
// Hand-built systems: exact row shapes and propagation scope
//===----------------------------------------------------------------------===//

struct TinySystem {
  propgraph::RepTable Reps;
  ConstraintSystem Sys;
  propgraph::RepId A, B, C;
  VarId VarASource, VarBSource, VarCSource, VarBSink;

  TinySystem() {
    A = Reps.intern("pkg.alpha()");
    B = Reps.intern("pkg.beta()");
    C = Reps.intern("pkg.gamma()");
    VarASource = Sys.Vars.varFor(A, propgraph::Role::Source);
    VarBSource = Sys.Vars.varFor(B, propgraph::Role::Source);
    VarCSource = Sys.Vars.varFor(C, propgraph::Role::Source);
    VarBSink = Sys.Vars.varFor(B, propgraph::Role::Sink);
    // alpha and beta share one event's surviving backoff set; gamma is
    // isolated (a singleton backoff set never propagates).
    Sys.EventReps = {{A, B}, {C}};
  }
};

TEST(FeedbackTest, DirectRowShapes) {
  TinySystem T;
  FeedbackSet Set;
  Set.accept("pkg.alpha()", propgraph::Role::Source);
  Set.reject("pkg.beta()", propgraph::Role::Sink);
  Set.reject("pkg.unknown()", propgraph::Role::Source);

  FeedbackOptions Opts;
  Opts.AcceptWeight = 2.0;
  Opts.RejectWeight = 3.0;
  Opts.SimilarityDecay = 0.0; // Direct rows only.
  size_t Before = T.Sys.Constraints.size();
  FeedbackStats Stats = applyFeedback(T.Sys, T.Reps, Set, Opts);

  EXPECT_EQ(Stats.Matched, 2u);
  EXPECT_EQ(Stats.Unmatched, 1u);
  EXPECT_EQ(Stats.EvidenceRows, 2u);
  EXPECT_EQ(Stats.PropagatedRows, 0u);
  ASSERT_EQ(T.Sys.Constraints.size(), Before + 2);

  // entries() order is (rep, role): alpha/source first, beta/sink second.
  const solver::LinearConstraint &Accept = T.Sys.Constraints[Before];
  EXPECT_TRUE(Accept.Lhs.empty());
  ASSERT_EQ(Accept.Rhs.size(), 1u);
  EXPECT_EQ(Accept.Rhs[0].Var, T.VarASource);
  EXPECT_FLOAT_EQ(Accept.Rhs[0].Coef, 2.0f);
  EXPECT_DOUBLE_EQ(Accept.C, -2.0); // Hinge w*(1-x): zero at x = 1.

  const solver::LinearConstraint &Reject = T.Sys.Constraints[Before + 1];
  ASSERT_EQ(Reject.Lhs.size(), 1u);
  EXPECT_TRUE(Reject.Rhs.empty());
  EXPECT_EQ(Reject.Lhs[0].Var, T.VarBSink);
  EXPECT_FLOAT_EQ(Reject.Lhs[0].Coef, 3.0f);
  EXPECT_DOUBLE_EQ(Reject.C, 0.0); // Hinge w*x: zero at x = 0.
}

TEST(FeedbackTest, PropagatesOnlyAcrossSharedBackoffSets) {
  TinySystem T;
  FeedbackSet Set;
  Set.accept("pkg.alpha()", propgraph::Role::Source);

  FeedbackOptions Opts;
  Opts.AcceptWeight = 1.0;
  Opts.SimilarityDecay = 0.5;
  size_t Before = T.Sys.Constraints.size();
  FeedbackStats Stats = applyFeedback(T.Sys, T.Reps, Set, Opts);

  // One direct row (alpha/source) and exactly one propagated row:
  // beta/source at the decayed weight. gamma shares no event with alpha,
  // and beta/sink is a different role — neither receives evidence.
  EXPECT_EQ(Stats.EvidenceRows, 1u);
  EXPECT_EQ(Stats.PropagatedRows, 1u);
  ASSERT_EQ(T.Sys.Constraints.size(), Before + 2);
  const solver::LinearConstraint &Prop = T.Sys.Constraints[Before + 1];
  ASSERT_EQ(Prop.Rhs.size(), 1u);
  EXPECT_EQ(Prop.Rhs[0].Var, T.VarBSource);
  EXPECT_FLOAT_EQ(Prop.Rhs[0].Coef, 0.5f);
  EXPECT_DOUBLE_EQ(Prop.C, -0.5);
}

TEST(FeedbackTest, DirectVerdictOverridesPropagation) {
  TinySystem T;
  FeedbackSet Set;
  Set.accept("pkg.alpha()", propgraph::Role::Source);
  Set.reject("pkg.beta()", propgraph::Role::Source);

  FeedbackStats Stats = applyFeedback(T.Sys, T.Reps, Set);
  // Both co-backoff representations carry direct verdicts, so nothing
  // propagates — a user's explicit reject is never diluted by a
  // neighbor's accept.
  EXPECT_EQ(Stats.EvidenceRows, 2u);
  EXPECT_EQ(Stats.PropagatedRows, 0u);
}

TEST(FeedbackTest, ZeroDecayDisablesPropagation) {
  TinySystem T;
  FeedbackSet Set;
  Set.accept("pkg.alpha()", propgraph::Role::Source);
  FeedbackOptions Opts;
  Opts.SimilarityDecay = 0.0;
  FeedbackStats Stats = applyFeedback(T.Sys, T.Reps, Set, Opts);
  EXPECT_EQ(Stats.EvidenceRows, 1u);
  EXPECT_EQ(Stats.PropagatedRows, 0u);
}

TEST(FeedbackTest, LastVerdictWinsAndEntriesAreOrdered) {
  FeedbackSet Set;
  Set.accept("z()", propgraph::Role::Sink);
  Set.reject("a()", propgraph::Role::Source);
  Set.accept("a()", propgraph::Role::Source); // Overrides the reject.
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_EQ(Set.verdict("a()", propgraph::Role::Source), 1);
  EXPECT_EQ(Set.verdict("z()", propgraph::Role::Sink), 1);
  EXPECT_EQ(Set.verdict("a()", propgraph::Role::Sink), 0);
  std::vector<FeedbackEntry> Entries = Set.entries();
  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].Rep, "a()");
  EXPECT_TRUE(Entries[0].Accepted);
  EXPECT_EQ(Entries[1].Rep, "z()");
}

//===----------------------------------------------------------------------===//
// Subgradient-level monotonicity: the exact guarantee behind "reject never
// raises, accept never lowers".
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, SubgradientsAreMonotoneAtInteriorPoints) {
  corpus::Corpus Data = testutil::makeCorpus(13, 6);
  infer::PipelineOptions P;
  P.Solve.MaxIterations = 1; // Only the generated system matters here.
  infer::Session S(P);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  ConstraintSystem Passive = S.system();

  // Pick a deterministic unpinned variable to judge.
  std::vector<uint8_t> Pinned(Passive.Vars.numVars(), 0);
  for (const auto &[Var, Value] : Passive.Pinned) {
    (void)Value;
    Pinned[Var] = 1;
  }
  VarId Judged = 0;
  bool Found = false;
  for (VarId V = 0; V < Passive.Vars.numVars() && !Found; ++V)
    if (!Pinned[V]) {
      Judged = V;
      Found = true;
    }
  ASSERT_TRUE(Found);
  const std::string &Rep = S.reps().repString(Passive.Vars.repOf(Judged));
  propgraph::Role Role = Passive.Vars.roleOf(Judged);

  const double W = 2.5;
  FeedbackOptions Opts;
  Opts.AcceptWeight = Opts.RejectWeight = W;
  Opts.SimilarityDecay = 0.0; // Isolate the direct-row effect.

  ConstraintSystem Accepted = Passive;
  FeedbackSet AcceptSet;
  AcceptSet.accept(Rep, Role);
  ASSERT_EQ(applyFeedback(Accepted, S.reps(), AcceptSet, Opts).Matched, 1u);

  ConstraintSystem Rejected = Passive;
  FeedbackSet RejectSet;
  RejectSet.reject(Rep, Role);
  ASSERT_EQ(applyFeedback(Rejected, S.reps(), RejectSet, Opts).Matched, 1u);

  const double Lambda = 0.1;
  solver::Objective ObjP = Passive.makeObjective(Lambda);
  solver::Objective ObjA = Accepted.makeObjective(Lambda);
  solver::Objective ObjR = Rejected.makeObjective(Lambda);

  // At any interior point the accept row adds exactly -w to the judged
  // variable's subgradient and the reject row exactly +w; every other
  // coordinate is bit-identical to the passive gradient.
  for (double Point : {0.25, 0.5, 0.75}) {
    std::vector<double> X(Passive.Vars.numVars(), Point);
    ObjP.project(X);
    std::vector<double> GP, GA, GR;
    ObjP.gradient(X, GP);
    ObjA.gradient(X, GA);
    ObjR.gradient(X, GR);
    ASSERT_EQ(GP.size(), GA.size());
    ASSERT_EQ(GP.size(), GR.size());
    for (size_t V = 0; V < GP.size(); ++V) {
      if (V == Judged) {
        EXPECT_DOUBLE_EQ(GA[V], GP[V] - W) << "x = " << Point;
        EXPECT_DOUBLE_EQ(GR[V], GP[V] + W) << "x = " << Point;
      } else {
        EXPECT_EQ(GA[V], GP[V]) << "var " << V;
        EXPECT_EQ(GR[V], GP[V]) << "var " << V;
      }
    }
  }

  // At the satisfied endpoints the evidence hinge is inactive: an accept
  // adds nothing at x = 1, a reject nothing at x = 0 — feedback never
  // over-pushes a variable that already agrees.
  std::vector<double> AtOne(Passive.Vars.numVars(), 1.0);
  ObjP.project(AtOne);
  std::vector<double> GP1, GA1;
  ObjP.gradient(AtOne, GP1);
  ObjA.gradient(AtOne, GA1);
  EXPECT_EQ(GA1[Judged], GP1[Judged]);
  std::vector<double> AtZero(Passive.Vars.numVars(), 0.0);
  ObjP.project(AtZero);
  std::vector<double> GP0, GR0;
  ObjP.gradient(AtZero, GP0);
  ObjR.gradient(AtZero, GR0);
  EXPECT_EQ(GR0[Judged], GP0[Judged]);
}

//===----------------------------------------------------------------------===//
// End-to-end: solves move in the verdict's direction, the empty set is the
// passive path byte for byte, and all backends agree.
//===----------------------------------------------------------------------===//

struct SolveSetup {
  explicit SolveSetup(int Projects = 6)
      : Data(testutil::makeCorpus(13, Projects)) {}

  corpus::Corpus Data;

  infer::PipelineResult
  solveWith(const FeedbackSet *Set,
            solver::SolverBackend Backend = solver::SolverBackend::Compiled,
            double Weight = 1.0) {
    infer::PipelineOptions P;
    P.Solve.MaxIterations = 300;
    P.Solve.Backend = Backend;
    P.Feedback = Set;
    P.FeedbackOpts.AcceptWeight = Weight;
    P.FeedbackOpts.RejectWeight = Weight;
    infer::Session S(P);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    return S.solve();
  }
};

TEST(FeedbackTest, EmptyFeedbackIsByteIdenticalToPassive) {
  SolveSetup Setup;
  infer::PipelineResult Passive = Setup.solveWith(nullptr);
  EXPECT_FALSE(Passive.UsedFeedback);
  FeedbackSet Empty;
  infer::PipelineResult WithEmpty = Setup.solveWith(&Empty);
  EXPECT_FALSE(WithEmpty.UsedFeedback);
  EXPECT_EQ(WithEmpty.System.Constraints.size(),
            Passive.System.Constraints.size());
  EXPECT_EQ(spec::writeLearnedSpec(WithEmpty.Learned, 0.0),
            spec::writeLearnedSpec(Passive.Learned, 0.0));
}

TEST(FeedbackTest, SolvesMoveInTheVerdictDirection) {
  // The small corpus solves every unpinned score to an extreme; at 16
  // projects the constraint structure leaves a genuinely mid-range
  // sanitizer score, where both directions have room to move.
  SolveSetup Setup(16);
  infer::PipelineResult Passive = Setup.solveWith(nullptr);

  // Judge a deterministic mid-range variable.
  std::vector<uint8_t> Pinned(Passive.System.Vars.numVars(), 0);
  for (const auto &[Var, Value] : Passive.System.Pinned) {
    (void)Value;
    Pinned[Var] = 1;
  }
  VarId Judged = 0;
  bool Found = false;
  for (VarId V = 0; V < Passive.System.Vars.numVars(); ++V) {
    if (Pinned[V])
      continue;
    double Score = Passive.Solve.X[V];
    if (Score > 0.15 && Score < 0.85) {
      Judged = V;
      Found = true;
      break;
    }
  }
  ASSERT_TRUE(Found) << "no mid-range score variable in the test corpus";
  const std::string &Rep =
      Passive.Reps.repString(Passive.System.Vars.repOf(Judged));
  propgraph::Role Role = Passive.System.Vars.roleOf(Judged);
  double Before = Passive.Solve.X[Judged];

  FeedbackSet Accept;
  Accept.accept(Rep, Role);
  infer::PipelineResult Up =
      Setup.solveWith(&Accept, solver::SolverBackend::Compiled,
                      /*Weight=*/5.0);
  EXPECT_TRUE(Up.UsedFeedback);
  EXPECT_EQ(Up.Feedback.Matched, 1u);
  EXPECT_GT(Up.Solve.X[Judged], Before)
      << Rep << " score did not rise after an accept";

  FeedbackSet Reject;
  Reject.reject(Rep, Role);
  infer::PipelineResult Down =
      Setup.solveWith(&Reject, solver::SolverBackend::Compiled,
                      /*Weight=*/5.0);
  EXPECT_LT(Down.Solve.X[Judged], Before)
      << Rep << " score did not fall after a reject";
}

TEST(FeedbackTest, FeedbackSolvesAreByteIdenticalAcrossBackends) {
  SolveSetup Setup;
  FeedbackSet Set;
  // Judge a couple of reps the corpus is guaranteed to score (seeded reps
  // have pinned variables but still produce matched evidence rows only if
  // present; use whatever the system scored).
  infer::PipelineResult Probe = Setup.solveWith(nullptr);
  ASSERT_GT(Probe.System.Vars.numVars(), 2u);
  Set.accept(Probe.Reps.repString(Probe.System.Vars.repOf(0)),
             Probe.System.Vars.roleOf(0));
  Set.reject(Probe.Reps.repString(Probe.System.Vars.repOf(1)),
             Probe.System.Vars.roleOf(1));

  infer::PipelineResult Legacy =
      Setup.solveWith(&Set, solver::SolverBackend::Legacy);
  infer::PipelineResult Compiled =
      Setup.solveWith(&Set, solver::SolverBackend::Compiled);
  infer::PipelineResult Simd =
      Setup.solveWith(&Set, solver::SolverBackend::Simd);
  std::string LegacySpec = spec::writeLearnedSpec(Legacy.Learned, 0.0);
  EXPECT_EQ(LegacySpec, spec::writeLearnedSpec(Compiled.Learned, 0.0));
  EXPECT_EQ(LegacySpec, spec::writeLearnedSpec(Simd.Learned, 0.0));
}

} // namespace
