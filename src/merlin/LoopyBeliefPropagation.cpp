//===- merlin/LoopyBeliefPropagation.cpp - Sum-product inference ----------===//

#include "merlin/LoopyBeliefPropagation.h"

#include "support/Timer.h"

#include <algorithm>
#include <cmath>

using namespace seldon;
using namespace seldon::merlin;

namespace {

/// Normalizes a binary message in place; falls back to uniform when the
/// mass vanishes (numerically dead message).
void normalize(double &M0, double &M1) {
  double Sum = M0 + M1;
  if (Sum <= 0.0 || !std::isfinite(Sum)) {
    M0 = M1 = 0.5;
    return;
  }
  M0 /= Sum;
  M1 /= Sum;
}

} // namespace

InferenceResult LoopyBeliefPropagation::run(const FactorGraph &Graph) const {
  Timer Clock;
  InferenceResult Result;
  const std::vector<Factor> &Factors = Graph.factors();
  const auto &VarFactors = Graph.varToFactors();
  const size_t NumVars = Graph.numVars();

  // Message storage: one (2-value) message per factor slot, per direction.
  // Slot offsets index the flattened arrays.
  std::vector<size_t> SlotOffset(Factors.size() + 1, 0);
  for (size_t F = 0; F < Factors.size(); ++F)
    SlotOffset[F + 1] = SlotOffset[F] + Factors[F].arity();
  size_t NumSlots = SlotOffset.back();

  std::vector<double> VarToFac(2 * NumSlots, 0.5);
  std::vector<double> FacToVar(2 * NumSlots, 0.5);

  auto SlotIdx = [&](size_t F, size_t K) { return SlotOffset[F] + K; };

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    if (Options.TimeoutSeconds > 0.0 &&
        Clock.seconds() > Options.TimeoutSeconds) {
      Result.TimedOut = true;
      break;
    }

    // Variable -> factor messages: product of the other factors' messages.
    for (size_t F = 0; F < Factors.size(); ++F) {
      for (size_t K = 0; K < Factors[F].arity(); ++K) {
        VarIdx V = Factors[F].Vars[K];
        double M0 = 1.0, M1 = 1.0;
        for (uint32_t OtherF : VarFactors[V]) {
          if (OtherF == F)
            continue;
          // Locate this variable's slot in the other factor.
          const Factor &Other = Factors[OtherF];
          for (size_t OK = 0; OK < Other.arity(); ++OK) {
            if (Other.Vars[OK] != V)
              continue;
            size_t S = SlotIdx(OtherF, OK);
            M0 *= FacToVar[2 * S];
            M1 *= FacToVar[2 * S + 1];
          }
        }
        normalize(M0, M1);
        size_t S = SlotIdx(F, K);
        VarToFac[2 * S] = M0;
        VarToFac[2 * S + 1] = M1;
      }
    }

    // Factor -> variable messages: marginalize the table against the other
    // slots' incoming messages.
    double MaxChange = 0.0;
    for (size_t F = 0; F < Factors.size(); ++F) {
      const Factor &Fac = Factors[F];
      size_t Arity = Fac.arity();
      for (size_t K = 0; K < Arity; ++K) {
        double Out[2] = {0.0, 0.0};
        for (size_t Bits = 0; Bits < Fac.Table.size(); ++Bits) {
          double Score = Fac.Table[Bits];
          if (Score == 0.0)
            continue;
          double Weight = Score;
          for (size_t J = 0; J < Arity; ++J) {
            if (J == K)
              continue;
            size_t S = SlotIdx(F, J);
            Weight *= VarToFac[2 * S + ((Bits >> J) & 1)];
          }
          Out[(Bits >> K) & 1] += Weight;
        }
        normalize(Out[0], Out[1]);
        size_t S = SlotIdx(F, K);
        double New0 = Options.Damping * FacToVar[2 * S] +
                      (1.0 - Options.Damping) * Out[0];
        double New1 = Options.Damping * FacToVar[2 * S + 1] +
                      (1.0 - Options.Damping) * Out[1];
        MaxChange = std::max(MaxChange, std::abs(New0 - FacToVar[2 * S]));
        FacToVar[2 * S] = New0;
        FacToVar[2 * S + 1] = New1;
      }
    }

    Result.Iterations = Iter;
    if (MaxChange < Options.Tolerance) {
      Result.Converged = true;
      break;
    }
  }

  // Beliefs: product of incoming factor messages.
  Result.Marginals.assign(NumVars, 0.5);
  for (VarIdx V = 0; V < NumVars; ++V) {
    double B0 = 1.0, B1 = 1.0;
    for (uint32_t F : VarFactors[V]) {
      const Factor &Fac = Factors[F];
      for (size_t K = 0; K < Fac.arity(); ++K) {
        if (Fac.Vars[K] != V)
          continue;
        size_t S = SlotIdx(F, K);
        B0 *= FacToVar[2 * S];
        B1 *= FacToVar[2 * S + 1];
      }
      normalize(B0, B1); // Renormalize eagerly to avoid underflow.
    }
    Result.Marginals[V] = B1;
  }
  Result.Seconds = Clock.seconds();
  return Result;
}
