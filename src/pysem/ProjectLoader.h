//===- pysem/ProjectLoader.h - Load projects from disk -----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads real Python repositories from the filesystem: walks a directory,
/// parses every `*.py` file, and returns a Project whose module paths are
/// relative to the root (so "pkg/views.py" resolves to module
/// "pkg.views"). Used by the CLI tool to run the pipeline on checkouts.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYSEM_PROJECTLOADER_H
#define SELDON_PYSEM_PROJECTLOADER_H

#include "pysem/Project.h"

#include <optional>
#include <string>
#include <vector>

namespace seldon {
namespace pysem {

/// Options for directory walking.
struct LoadOptions {
  /// Skip files larger than this many bytes (generated/minified blobs).
  size_t MaxFileBytes = 1u << 20;
  /// Directory names that are never descended into.
  std::vector<std::string> SkipDirs = {".git", "__pycache__", "venv",
                                       ".venv", "node_modules"};
};

/// Loads all `*.py` files under \p RootDir into a Project named after the
/// directory. Returns std::nullopt when \p RootDir does not exist or is
/// not a directory; per-file read failures are reported into
/// \p ErrorsOut (may be null) and skipped.
///
/// Thread-safe: concurrent calls share no mutable state, so one root can
/// be loaded per worker (see loadProjectsFromDirs).
std::optional<Project>
loadProjectFromDir(const std::string &RootDir,
                   const LoadOptions &Opts = LoadOptions(),
                   std::vector<std::string> *ErrorsOut = nullptr);

/// Loads several roots concurrently over \p Jobs worker threads (0 =
/// hardware concurrency, 1 = serial). Results — including the per-root
/// error lists in \p ErrorsOut, resized to RootDirs.size() — come back
/// indexed in RootDirs order, so the output is deterministic regardless
/// of the thread count.
std::vector<std::optional<Project>>
loadProjectsFromDirs(const std::vector<std::string> &RootDirs,
                     const LoadOptions &Opts = LoadOptions(),
                     unsigned Jobs = 0,
                     std::vector<std::vector<std::string>> *ErrorsOut =
                         nullptr);

/// Reads a whole file into a string; returns std::nullopt on failure.
std::optional<std::string> readFile(const std::string &Path);

} // namespace pysem
} // namespace seldon

#endif // SELDON_PYSEM_PROJECTLOADER_H
