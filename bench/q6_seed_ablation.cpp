//===- bench/q6_seed_ablation.cpp - Paper §7.5 Q6 -------------------------===//
//
// Regenerates the Q6 experiment: how does the seed specification size
// affect precision? The paper halves the seed (odd lines of App. B) and
// loses 14 precision points; with an empty seed, Seldon predicts nothing
// (all-zeros solves the constraint system). We run full, half, and empty
// seeds over the same corpus.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

namespace {

struct SeedRun {
  const char *Name;
  spec::SeedSpec Seed;
};

} // namespace

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  SeedRun Runs[3] = {{"Full seed", Data.Seed},
                     {"Half seed", Data.Seed.halved()},
                     {"Empty seed", spec::SeedSpec()}};
  // The empty seed still blacklists builtins (labels are what's removed).
  Runs[2].Seed.Blacklist = Data.Seed.Blacklist;

  std::cout << "=== Q6: Impact of the seed specification ===\n\n";
  TablePrinter Table({"Configuration", "Seed labels", "# Predicted",
                      "# Correct", "Precision"});
  double FullPrecision = 0.0, HalfPrecision = 0.0;
  for (SeedRun &R : Runs) {
    infer::Session S(PipelineOpts);
    S.addProjects(Data.Projects);
    S.generateConstraints(R.Seed);
    infer::PipelineResult Result = S.solve();
    size_t Predicted = 0, Correct = 0;
    for (Role Role : {Role::Source, Role::Sanitizer, Role::Sink}) {
      // Precision is always measured against the FULL seed's exclusions so
      // the prediction sets are comparable across configurations.
      RolePrecision P = exactPrecision(Result.Learned, Data.Truth, Data.Seed,
                                       Role, ScoreThreshold);
      Predicted += P.Predicted;
      Correct += P.Correct;
    }
    double Precision =
        Predicted ? static_cast<double>(Correct) / Predicted : 0.0;
    if (std::string(R.Name) == "Full seed")
      FullPrecision = Precision;
    if (std::string(R.Name) == "Half seed")
      HalfPrecision = Precision;
    Table.addRow({R.Name, std::to_string(R.Seed.Spec.size()),
                  std::to_string(Predicted), std::to_string(Correct),
                  Predicted ? percent(Precision) : "n/a (0 predictions)"});
  }
  Table.print(std::cout);

  std::cout << formatString(
      "\nHalving the seed changes precision by %.1f points (paper: -14 "
      "points); an empty seed\nmust predict ~nothing.\n",
      100.0 * (HalfPrecision - FullPrecision));
  return 0;
}
