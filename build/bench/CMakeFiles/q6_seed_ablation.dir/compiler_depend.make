# Empty compiler generated dependencies file for q6_seed_ablation.
# This may be replaced when dependencies are built.
