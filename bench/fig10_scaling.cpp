//===- bench/fig10_scaling.cpp - Paper Fig. 10 ----------------------------===//
//
// Regenerates Figure 10: Seldon inference time as a function of the number
// of analyzed files. The paper shows linear scaling up to 800,000 files
// (< 5 hours); we sweep corpus subsets of growing size and report the
// inference time (constraint generation + solving) plus the per-file rate,
// which must stay roughly constant for linear scaling.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;

int main() {
  int MaxProjects = envInt("SELDON_PROJECTS", 300) * 2;
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();

  std::cout << "=== Figure 10: Seldon inference time vs number of analyzed "
               "files ===\n\n";
  TablePrinter Table({"# Files", "# Constraints", "Inference time (s)",
                      "ms per file"});

  double HalfRate = 0.0, LastRate = 0.0;
  for (int Fraction = 1; Fraction <= 8; ++Fraction) {
    corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
    CorpusOpts.NumProjects = MaxProjects * Fraction / 8;
    if (CorpusOpts.NumProjects == 0)
      continue;
    corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);
    infer::PipelineResult R =
        infer::runPipeline(Data.Projects, Data.Seed, PipelineOpts);
    double MsPerFile = R.NumFiles == 0
                           ? 0.0
                           : 1000.0 * R.inferenceSeconds() /
                                 static_cast<double>(R.NumFiles);
    if (Fraction == 4)
      HalfRate = MsPerFile;
    LastRate = MsPerFile;
    Table.addRow({std::to_string(R.NumFiles),
                  std::to_string(R.System.Constraints.size()),
                  formatString("%.3f", R.inferenceSeconds()),
                  formatString("%.3f", MsPerFile)});
  }
  Table.print(std::cout);

  std::cout << formatString(
      "\nPer-file rate at half vs full corpus: %.3f vs %.3f ms/file — "
      "linear scaling keeps\nthese close. (The rate climbs at the smallest "
      "sizes while representations are still\nbelow the frequency cutoff, "
      "then plateaus; the paper's curve is linear up to 800k\nfiles.)\n",
      HalfRate, LastRate);
  return 0;
}
