file(REMOVE_RECURSE
  "CMakeFiles/appc_reported_bugs.dir/appc_reported_bugs.cpp.o"
  "CMakeFiles/appc_reported_bugs.dir/appc_reported_bugs.cpp.o.d"
  "appc_reported_bugs"
  "appc_reported_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appc_reported_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
