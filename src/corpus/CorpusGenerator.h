//===- corpus/CorpusGenerator.h - Synthetic web-app corpora ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a deterministic corpus of synthetic Python web applications —
/// the stand-in for the paper's GitHub dataset (§7.2). Each project mixes:
///
///  * sanitized flows    source -> sanitizer -> sink (sometimes through a
///                       project-local wrapper function, which the learner
///                       must discover via representation backoff);
///  * vulnerable flows   source -> sink, a fraction marked non-exploitable
///                       (the paper's "vulnerable flow, but no bug" rows);
///  * wrong-parameter    tainted data entering a harmless parameter of a
///    flows              sink (Tab. 6 "Flows into wrong parameter");
///  * route handlers     whose formal parameters are true sources;
///  * class-based        handlers storing request data in `self` fields
///    handlers           (exercising the points-to pass);
///  * neutral noise      blacklisted builtins and role-less helper APIs.
///
/// Every generated flow is recorded with its ground truth so the
/// evaluation can classify analyzer reports exactly (Tab. 6/7).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CORPUS_CORPUSGENERATOR_H
#define SELDON_CORPUS_CORPUSGENERATOR_H

#include "corpus/ApiUniverse.h"
#include "pysem/Project.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace corpus {

/// Generation knobs.
struct CorpusOptions {
  int NumProjects = 300;
  int MinFilesPerProject = 2;
  int MaxFilesPerProject = 5;
  int MinFlowsPerFile = 3;
  int MaxFlowsPerFile = 7;
  int NoiseStatementsPerFile = 4;
  uint64_t Seed = 42;
  UniverseOptions Universe;

  // Flow-mix probabilities (normalized internally).
  double PSanitized = 0.50;
  double PVulnerable = 0.30;
  double PWrongParam = 0.08;
  double PParamHandler = 0.12;
  /// Flows whose source is an attribute read of a handler parameter
  /// (`post.title`-style sources, cf. the paper's Tab. 8 samples).
  double PAttrReadSource = 0.12;
  /// Among sanitized flows: route through a project-local wrapper defined
  /// in the same file.
  double PWrapperSanitizer = 0.3;
  /// Among sanitized flows: route through the project's shared `utils.py`
  /// module instead (`from utils import sanitize_input`) — project-local
  /// libraries whose representations repeat across repositories.
  double PUtilsSanitizer = 0.15;
  /// Among vulnerable flows: actually exploitable (Tab. 6).
  double PExploitable = 0.7;
  /// Chance a flow is wrapped in a class-based handler.
  double PClassHandler = 0.15;
  /// Probability an API pick comes from the hand-written popular core
  /// rather than the full pool (popular frameworks dominate real corpora).
  double CoreBias = 0.25;
};

/// Ground-truth record of one generated flow.
struct GeneratedFlow {
  std::string File;
  std::string SrcRep;
  std::string SnkRep;
  std::string VulnClass;
  bool Sanitized = false;
  bool Exploitable = false;
  bool WrongParam = false;
};

/// A generated corpus with its oracle.
struct Corpus {
  std::vector<pysem::Project> Projects;
  spec::SeedSpec Seed;
  GroundTruth Truth;
  std::vector<GeneratedFlow> Flows;
  size_t NumFiles = 0;
  size_t TotalLines = 0;
};

/// Generates the corpus described by \p Opts. Deterministic in Opts.Seed.
Corpus generateCorpus(const CorpusOptions &Opts = CorpusOptions());

/// Generates one project of roughly \p NumFiles files — used by the Merlin
/// scalability experiment (Tab. 2), which compares a small and a large
/// application.
pysem::Project generateSingleProject(const ApiUniverse &Universe,
                                     uint64_t Seed, int NumFiles,
                                     int FlowsPerFile,
                                     const std::string &Name);

} // namespace corpus
} // namespace seldon

#endif // SELDON_CORPUS_CORPUSGENERATOR_H
