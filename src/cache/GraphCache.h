//===- cache/GraphCache.h - Persistent propagation-graph cache ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk cache of per-project propagation graphs. The §5 frontend is
/// deterministic per project, so on a big-code corpus repeated inference
/// runs only need to pay for projects whose sources (or build options)
/// changed — the same idea InspectJS and explicit-data-dependency taint
/// trackers use when they persist intermediate flow representations.
///
/// Keying / invalidation: an entry is addressed by a 64-bit FNV-1a hash of
/// the codec format version, every propgraph::BuildOptions field, and each
/// module's path and full source text (all length-prefixed). Any change to
/// any of these produces a different key, so stale entries are never *hit*
/// — they simply become garbage that a later sweep may remove.
///
/// Failure discipline: a missing entry is a miss; an unreadable, truncated,
/// bit-flipped, version-skewed, or key-mismatched entry is *evicted* (the
/// file is deleted, the error recorded in the stats) and reported as a
/// miss, so the caller transparently rebuilds and re-stores it. A load
/// never yields a partially-populated graph (see propgraph/GraphCodec.h).
///
/// Concurrency: load() and store() may be called concurrently from pool
/// workers. Stores write to a unique temp file and rename it into place,
/// so readers never observe a half-written entry even across processes.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CACHE_GRAPHCACHE_H
#define SELDON_CACHE_GRAPHCACHE_H

#include "propgraph/GraphBuilder.h"
#include "propgraph/PropagationGraph.h"
#include "pysem/Project.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace seldon {
namespace cache {

/// Content hash identifying one project's frontend output (sources +
/// build options + codec version).
struct CacheKey {
  uint64_t Hash = 0;

  /// 16 lowercase hex digits; the entry's file stem.
  std::string hex() const;
};

/// Computes the cache key of \p Proj under \p Opts. Deterministic in the
/// module list (paths + sources, in order) and every BuildOptions field;
/// independent of the project's display name and on-disk location.
CacheKey projectCacheKey(const pysem::Project &Proj,
                         const propgraph::BuildOptions &Opts);

/// Counters of one cache's lifetime (monotonic; snapshot via stats()).
struct CacheStats {
  uint64_t Hits = 0;       ///< Entries adopted without a rebuild.
  uint64_t Misses = 0;     ///< Absent or evicted entries.
  uint64_t Evictions = 0;  ///< Corrupt/mismatched entries deleted on load.
  uint64_t Stores = 0;     ///< Entries written back.
  uint64_t BytesRead = 0;  ///< Total size of successfully loaded entries.
  uint64_t BytesWritten = 0;
  /// Crash-leaked "<entry>.tmp<seq>" files swept when the cache opened.
  uint64_t StaleTempsRemoved = 0;
  /// Descriptive messages of every rejected entry and failed store, in
  /// occurrence order.
  std::vector<std::string> Errors;
};

/// Removes crash-leaked store temporaries from \p Dir: files named
/// "<stem><EntrySuffix>.tmp<seq>" (the unique-temp pattern both caches
/// write before their publishing rename) whose mtime is at least
/// \p MaxAgeSeconds old. The age guard keeps a concurrent process's
/// in-flight store alive; a crashed writer's leftovers are far older by
/// the time anything reopens the cache. Returns the number removed.
size_t sweepStaleTemps(const std::string &Dir, const char *EntrySuffix,
                       unsigned MaxAgeSeconds = 15 * 60);

/// The on-disk store. Construction creates the directory (recursively);
/// an unusable directory leaves the cache in a degraded valid()==false
/// state where every load misses and every store fails with a recorded
/// error — the pipeline still runs, just uncached.
class GraphCache {
public:
  explicit GraphCache(std::string Dir);

  GraphCache(const GraphCache &) = delete;
  GraphCache &operator=(const GraphCache &) = delete;

  const std::string &dir() const { return Dir; }

  /// False when the cache directory could not be created/used; error()
  /// then describes why.
  bool valid() const { return DirError.empty(); }
  const std::string &error() const { return DirError; }

  /// Absolute-ish path of \p Key's entry file inside dir().
  std::string entryPath(const CacheKey &Key) const;

  /// Loads and decodes \p Key's entry. nullopt on miss — including every
  /// corruption case, which additionally evicts the bad entry and records
  /// a descriptive error in stats(). Thread-safe.
  std::optional<propgraph::PropagationGraph> load(const CacheKey &Key);

  /// Encodes and atomically writes \p Graph as \p Key's entry. Returns
  /// false (recording an error) when the write fails. Thread-safe.
  bool store(const CacheKey &Key, const propgraph::PropagationGraph &Graph);

  /// Snapshot of the counters and recorded errors.
  CacheStats stats() const;

private:
  void recordError(std::string Message);

  std::string Dir;
  std::string DirError;
  mutable std::mutex Mutex;
  CacheStats Stats;
};

} // namespace cache
} // namespace seldon

#endif // SELDON_CACHE_GRAPHCACHE_H
