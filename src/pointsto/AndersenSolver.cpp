//===- pointsto/AndersenSolver.cpp - Inclusion-based points-to ------------===//

#include "pointsto/AndersenSolver.h"

#include "support/Metrics.h"

#include <cassert>

using namespace seldon;
using namespace seldon::pointsto;

const std::set<ObjId> AndersenSolver::EmptySet;

VarId AndersenSolver::makeVar(std::string Name) {
  Vars.push_back(VarNode{std::move(Name), {}, {}, {}, {}});
  Dispatched.emplace_back();
  return static_cast<VarId>(Vars.size() - 1);
}

ObjId AndersenSolver::makeObj(std::string Label) {
  ObjLabels.push_back(std::move(Label));
  return static_cast<ObjId>(ObjLabels.size() - 1);
}

VarId AndersenSolver::fieldVar(ObjId O, const std::string &Field) {
  auto Key = std::make_pair(O, Field);
  auto It = FieldVars.find(Key);
  if (It != FieldVars.end())
    return It->second;
  VarId V = makeVar(ObjLabels[O] + "." + Field);
  FieldVars.emplace(Key, V);
  return V;
}

void AndersenSolver::addToPts(VarId V, ObjId O) {
  if (Vars[V].Pts.insert(O).second)
    Worklist.push_back(V);
}

void AndersenSolver::addAlloc(VarId V, ObjId O) {
  assert(V < Vars.size() && O < ObjLabels.size());
  addToPts(V, O);
}

void AndersenSolver::addCopy(VarId Dst, VarId Src) {
  assert(Dst < Vars.size() && Src < Vars.size());
  if (Dst == Src || !Vars[Src].CopyTo.insert(Dst).second)
    return;
  bool Grew = false;
  for (ObjId O : Vars[Src].Pts)
    Grew |= Vars[Dst].Pts.insert(O).second;
  if (Grew)
    Worklist.push_back(Dst);
}

void AndersenSolver::addStore(VarId Base, const std::string &Field,
                              VarId Src) {
  assert(Base < Vars.size() && Src < Vars.size());
  Vars[Base].Stores.emplace_back(Field, Src);
  // Wire the constraint for objects base already points to; future objects
  // are handled when solve() dispatches them.
  std::vector<ObjId> Existing(Vars[Base].Pts.begin(), Vars[Base].Pts.end());
  for (ObjId O : Existing)
    addCopy(fieldVar(O, Field), Src);
}

void AndersenSolver::addLoad(VarId Dst, VarId Base, const std::string &Field) {
  assert(Dst < Vars.size() && Base < Vars.size());
  Vars[Base].Loads.emplace_back(Field, Dst);
  std::vector<ObjId> Existing(Vars[Base].Pts.begin(), Vars[Base].Pts.end());
  for (ObjId O : Existing)
    addCopy(Dst, fieldVar(O, Field));
}

void AndersenSolver::solve() {
  // Seed: every variable with undispatched objects or unpropagated sets.
  for (VarId V = 0; V < Vars.size(); ++V)
    Worklist.push_back(V);

  // Counted locally and published once after the fixpoint: solve() runs
  // per project under the parallel frontend, and a shared atomic on the
  // worklist hot path would serialize the workers' cache lines.
  uint64_t Pops = 0;
  while (!Worklist.empty()) {
    VarId V = Worklist.back();
    Worklist.pop_back();
    ++Pops;

    // Dispatch complex constraints for objects newly observed at V.
    std::vector<ObjId> Fresh;
    for (ObjId O : Vars[V].Pts)
      if (!Dispatched[V].count(O))
        Fresh.push_back(O);
    for (ObjId O : Fresh) {
      Dispatched[V].insert(O);
      // Copy out the constraint lists: addCopy/fieldVar may grow Vars and
      // invalidate references into it.
      std::vector<std::pair<std::string, VarId>> Stores = Vars[V].Stores;
      std::vector<std::pair<std::string, VarId>> Loads = Vars[V].Loads;
      for (const auto &[Field, Src] : Stores)
        addCopy(fieldVar(O, Field), Src);
      for (const auto &[Field, Dst] : Loads)
        addCopy(Dst, fieldVar(O, Field));
    }

    // Propagate along subset edges.
    std::vector<VarId> Targets(Vars[V].CopyTo.begin(), Vars[V].CopyTo.end());
    for (VarId T : Targets) {
      bool Grew = false;
      for (ObjId O : Vars[V].Pts)
        Grew |= Vars[T].Pts.insert(O).second;
      if (Grew)
        Worklist.push_back(T);
    }
  }

  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("pointsto.solves").add();
    Reg.counter("pointsto.worklist_pops").add(Pops);
    Reg.counter("pointsto.vars").add(Vars.size());
  }
}

const std::set<ObjId> &AndersenSolver::pointsTo(VarId V) const {
  assert(V < Vars.size());
  return Vars[V].Pts;
}

const std::set<ObjId> &
AndersenSolver::fieldPointsTo(ObjId O, const std::string &Field) const {
  auto It = FieldVars.find(std::make_pair(O, Field));
  if (It == FieldVars.end())
    return EmptySet;
  return Vars[It->second].Pts;
}

bool AndersenSolver::mayAlias(VarId A, VarId B) const {
  const std::set<ObjId> &PA = pointsTo(A);
  const std::set<ObjId> &PB = pointsTo(B);
  const std::set<ObjId> &Small = PA.size() <= PB.size() ? PA : PB;
  const std::set<ObjId> &Large = PA.size() <= PB.size() ? PB : PA;
  for (ObjId O : Small)
    if (Large.count(O))
      return true;
  return false;
}
