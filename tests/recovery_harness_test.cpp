//===- tests/recovery_harness_test.cpp - Kill-and-restart recovery --------===//
//
// Drives the built `seldond` binary through real process crashes: for
// every durability crash point (SELDON_FAULT "crash:" arms), a mutating
// op kills the daemon mid-boundary, and a restarted daemon on the same
// --state-dir must serve exactly the state the protocol promises — the
// pre-op state when the crash landed before the journal fsync, the
// post-op state anywhere after — byte-for-byte against a never-crashed
// reference, at any --jobs. Also covers the orderly half: SIGTERM in
// socket mode drains, persists, removes the socket file, and exits 0.
//
//===----------------------------------------------------------------------===//

#include "service/SocketServer.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace {

#ifndef SELDOND_PATH
#error "SELDOND_PATH must be defined by the build"
#endif

/// The exit code fault::crashExit uses — a crashed daemon must be
/// distinguishable from an ordinary failure (1) or a clean exit (0).
constexpr int CrashExitCode = 86;

constexpr const char *FeedbackLine =
    "{\"v\":1,\"id\":1,\"op\":\"feedback\","
    "\"accept\":[{\"rep\":\"flask.escape()\",\"role\":\"sanitizer\"}],"
    "\"iters\":200}";
constexpr const char *QueryLine =
    "{\"v\":1,\"id\":2,\"op\":\"query\",\"rep\":\"flask.escape()\","
    "\"role\":\"sanitizer\"}";

struct RunResult {
  int ExitCode = -1;
  std::vector<std::string> Stdout; // Response lines.
  std::string Stderr;
};

class RecoveryHarnessTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("seldond_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(Root / "repo");
    std::ofstream Out(Root / "repo" / "app.py");
    Out << "from flask import request\n"
           "import flask\n"
           "\n"
           "def greet():\n"
           "    name = request.args.get('name')\n"
           "    flask.make_response('<h1>' + name + '</h1>')\n"
           "\n"
           "def safe():\n"
           "    name = request.args.get('name')\n"
           "    flask.make_response(flask.escape(name))\n";
  }

  void TearDown() override {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  std::string path(const std::string &Relative) const {
    return (Root / Relative).string();
  }

  /// Runs `seldond --once` on the fixture corpus with \p StateDir,
  /// feeding \p Requests one per line, optionally under a SELDON_FAULT
  /// arm and a --jobs override. Blocking; the daemon exits at EOF or at
  /// an injected crash.
  RunResult runOnce(const std::string &StateDir,
                    const std::vector<std::string> &Requests,
                    const std::string &Fault = "", unsigned Jobs = 0) {
    static int Seq = 0;
    std::string InFile = path("in" + std::to_string(Seq));
    std::string ErrFile = path("err" + std::to_string(Seq));
    ++Seq;
    {
      std::ofstream In(InFile);
      for (const std::string &R : Requests)
        In << R << "\n";
    }
    std::string Command;
    if (!Fault.empty())
      Command += "SELDON_FAULT='" + Fault + "' ";
    Command += std::string("'") + SELDOND_PATH +
               "' --once --iters 200 --cutoff 1 --state-dir '" + StateDir +
               "' ";
    if (Jobs)
      Command += "--jobs " + std::to_string(Jobs) + " ";
    Command += "'" + path("repo") + "' < '" + InFile + "' 2> '" + ErrFile +
               "'";

    RunResult Result;
    FILE *Pipe = popen(Command.c_str(), "r");
    if (!Pipe) {
      ADD_FAILURE() << "popen failed: " << Command;
      return Result;
    }
    std::string Out;
    std::array<char, 4096> Buffer;
    size_t N;
    while ((N = fread(Buffer.data(), 1, Buffer.size(), Pipe)) > 0)
      Out.append(Buffer.data(), N);
    int Status = pclose(Pipe);
    Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
    size_t Start = 0;
    while (Start < Out.size()) {
      size_t NL = Out.find('\n', Start);
      if (NL == std::string::npos)
        NL = Out.size();
      Result.Stdout.push_back(Out.substr(Start, NL - Start));
      Start = NL + 1;
    }
    std::ifstream Err(ErrFile);
    Result.Stderr.assign((std::istreambuf_iterator<char>(Err)),
                         std::istreambuf_iterator<char>());
    return Result;
  }

  fs::path Root;
};

//===----------------------------------------------------------------------===//
// Crash-point sweep: every durability boundary, exact-state recovery
//===----------------------------------------------------------------------===//

TEST_F(RecoveryHarnessTest, EveryCrashPointRecoversTheExactState) {
  // References from never-crashed daemons: the query answer before any
  // feedback, and after the feedback op. They must differ, or the sweep
  // below could not tell the two recovery outcomes apart.
  std::string PreDir = path("state-pre");
  RunResult Pre = runOnce(PreDir, {QueryLine});
  ASSERT_EQ(Pre.ExitCode, 0) << Pre.Stderr;
  ASSERT_EQ(Pre.Stdout.size(), 1u);
  std::string PreAnswer = Pre.Stdout[0];

  std::string PostDir = path("state-post");
  RunResult Post = runOnce(PostDir, {FeedbackLine, QueryLine});
  ASSERT_EQ(Post.ExitCode, 0) << Post.Stderr;
  ASSERT_EQ(Post.Stdout.size(), 2u);
  std::string PostAnswer = Post.Stdout[1];
  ASSERT_NE(PreAnswer, PostAnswer)
      << "feedback must change the served answer for this sweep to bite";

  // A crash before the frame is fully written loses the op; any complete
  // frame must replay. Note "journal-fsync" (complete frame, no fsync):
  // a *process* crash keeps page-cache writes, so the frame is present on
  // restart and replay applies it — exactly the at-least-once contract.
  // The fsync guards against machine crashes, which this harness cannot
  // simulate; the torn-write case below covers the lost-op side.
  struct CrashCase {
    const char *Point;
    bool OpSurvives;
  };
  const CrashCase Cases[] = {
      {"journal-append", false}, // Torn frame: truncated on recovery.
      {"journal-fsync", true},   // Complete frame survives the process.
      {"journal-synced", true},  // Durable; replay re-executes it.
      {"snapshot-write", true},  // Applied; journal still has it.
      {"snapshot-rename", true}, // Snapshot published, not compacted.
      {"journal-reset", true},   // Compaction interrupted; horizon skips.
  };

  for (const CrashCase &C : Cases) {
    std::string Dir = path(std::string("state-") + C.Point);
    std::string Fault = std::string("crash:") + C.Point + ":1";
    RunResult Crashed = runOnce(Dir, {FeedbackLine, QueryLine}, Fault);
    ASSERT_EQ(Crashed.ExitCode, CrashExitCode)
        << C.Point << " did not crash the daemon: " << Crashed.Stderr;
    // The crash always lands before the response is written: the client
    // never saw an acknowledgment either way.
    EXPECT_TRUE(Crashed.Stdout.empty())
        << C.Point << " answered before crashing: " << Crashed.Stdout[0];
    EXPECT_NE(Crashed.Stderr.find("injected crash"), std::string::npos)
        << C.Point << ": " << Crashed.Stderr;

    RunResult Restarted = runOnce(Dir, {QueryLine});
    ASSERT_EQ(Restarted.ExitCode, 0) << C.Point << ": " << Restarted.Stderr;
    ASSERT_EQ(Restarted.Stdout.size(), 1u) << C.Point;
    EXPECT_EQ(Restarted.Stdout[0], C.OpSurvives ? PostAnswer : PreAnswer)
        << C.Point << " recovered the wrong state; stderr:\n"
        << Restarted.Stderr;
  }
}

TEST_F(RecoveryHarnessTest, RecoveryIsJobsInvariant) {
  std::string Dir = path("state-jobs");
  RunResult Seeded = runOnce(Dir, {FeedbackLine, QueryLine});
  ASSERT_EQ(Seeded.ExitCode, 0) << Seeded.Stderr;
  ASSERT_EQ(Seeded.Stdout.size(), 2u);

  RunResult OneJob = runOnce(Dir, {QueryLine}, "", /*Jobs=*/1);
  RunResult FourJobs = runOnce(Dir, {QueryLine}, "", /*Jobs=*/4);
  ASSERT_EQ(OneJob.ExitCode, 0) << OneJob.Stderr;
  ASSERT_EQ(FourJobs.ExitCode, 0) << FourJobs.Stderr;
  ASSERT_EQ(OneJob.Stdout.size(), 1u);
  ASSERT_EQ(FourJobs.Stdout.size(), 1u);
  EXPECT_EQ(OneJob.Stdout[0], Seeded.Stdout[1]);
  EXPECT_EQ(FourJobs.Stdout[0], Seeded.Stdout[1]);
}

TEST_F(RecoveryHarnessTest, RepeatedCrashesAtTheSameOpStayConsistent) {
  // Crash the same journaled op twice in a row (the restart that replays
  // it also crashes, at its snapshot), then recover: the op must apply
  // exactly once — at-least-once replay with idempotent application.
  std::string Dir = path("state-twice");
  RunResult First =
      runOnce(Dir, {FeedbackLine, QueryLine}, "crash:journal-synced:1");
  ASSERT_EQ(First.ExitCode, CrashExitCode) << First.Stderr;
  // The restart replays seq 1 and snapshots it; crash that snapshot.
  RunResult Second = runOnce(Dir, {QueryLine}, "crash:snapshot-write:1");
  ASSERT_EQ(Second.ExitCode, CrashExitCode) << Second.Stderr;

  std::string PostDir = path("state-ref");
  RunResult Post = runOnce(PostDir, {FeedbackLine, QueryLine});
  ASSERT_EQ(Post.ExitCode, 0) << Post.Stderr;

  RunResult Final = runOnce(Dir, {QueryLine});
  ASSERT_EQ(Final.ExitCode, 0) << Final.Stderr;
  ASSERT_EQ(Final.Stdout.size(), 1u);
  EXPECT_EQ(Final.Stdout[0], Post.Stdout[1]) << Final.Stderr;
}

//===----------------------------------------------------------------------===//
// Orderly shutdown: SIGTERM in socket mode
//===----------------------------------------------------------------------===//

TEST_F(RecoveryHarnessTest, SigtermDrainsPersistsAndRemovesTheSocket) {
  std::string SocketPath = path("seldond.sock");
  std::string StateDir = path("state-sigterm");
  std::string ErrFile = path("daemon.err");

  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: become the daemon, stderr to a file for post-mortems.
    FILE *Err = freopen(ErrFile.c_str(), "w", stderr);
    (void)Err;
    std::string Repo = path("repo");
    execl(SELDOND_PATH, SELDOND_PATH, "--socket", SocketPath.c_str(),
          "--state-dir", StateDir.c_str(), "--iters", "200", "--cutoff",
          "1", Repo.c_str(), static_cast<char *>(nullptr));
    _exit(127); // exec failed.
  }

  // Wait for the cold start to finish (the socket appears last).
  bool Up = false;
  for (int I = 0; I < 600 && !Up; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    Up = fs::exists(SocketPath);
    int Status;
    if (waitpid(Pid, &Status, WNOHANG) == Pid) {
      std::ifstream Err(ErrFile);
      std::string Text((std::istreambuf_iterator<char>(Err)),
                       std::istreambuf_iterator<char>());
      FAIL() << "daemon exited during startup: " << Text;
    }
  }
  ASSERT_TRUE(Up) << "daemon never came up";

  // A mutating op through the socket, acknowledged before the kill.
  {
    seldon::service::SocketClient Client;
    std::string Error, Response;
    ASSERT_TRUE(Client.connect(SocketPath, Error)) << Error;
    ASSERT_TRUE(Client.roundTrip(FeedbackLine, Response));
    EXPECT_NE(Response.find("\"ok\":true"), std::string::npos) << Response;
  }

  ASSERT_EQ(kill(Pid, SIGTERM), 0);
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status)) << "daemon died of a signal, not a drain";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_FALSE(fs::exists(SocketPath))
      << "orderly kill left the socket file behind";

  // The acknowledged op survived: a restart serves the post-op answer.
  std::string PostDir = path("state-ref");
  RunResult Post = runOnce(PostDir, {FeedbackLine, QueryLine});
  ASSERT_EQ(Post.ExitCode, 0) << Post.Stderr;
  RunResult Restarted = runOnce(StateDir, {QueryLine});
  ASSERT_EQ(Restarted.ExitCode, 0) << Restarted.Stderr;
  ASSERT_EQ(Restarted.Stdout.size(), 1u);
  EXPECT_EQ(Restarted.Stdout[0], Post.Stdout[1]) << Restarted.Stderr;
}

} // namespace
