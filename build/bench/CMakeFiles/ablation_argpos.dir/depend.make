# Empty dependencies file for ablation_argpos.
# This may be replaced when dependencies are built.
