file(REMOVE_RECURSE
  "libseldon_spec.a"
)
