//===- tools/seldond.cpp - Long-lived inference daemon --------------------===//
//
// The `seldond` daemon: load a corpus once, keep the propagation graph,
// constraint system, and learned specification warm, and answer protocol
// requests (see docs/architecture.md "The inference service") without
// ever re-parsing the corpus.
//
//   seldond --socket /tmp/seldond.sock [options] DIR...
//       Serve the line-delimited JSON protocol on a Unix domain socket.
//
//   seldond --once [options] DIR...
//       Serve one request per stdin line, response per stdout line, until
//       EOF or a `shutdown` request — the transport-free mode tests and
//       scripts drive.
//
//   printf '{"v":1,"id":1,"op":"status"}\n' | seldond --once corpus/
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "service/SocketServer.h"
#include "support/ArgParser.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace seldon;

namespace {

/// SIGTERM/SIGINT handling: the handler only stores an atomic flag and
/// calls SocketServer::stop() (an atomic store plus ::shutdown — both
/// async-signal-safe). Handlers are installed without SA_RESTART, so the
/// blocking stdin read of --once mode wakes with EINTR instead of riding
/// out the signal. The drain, the final snapshot, and the socket-file
/// unlink all run in normal context after the serve loop returns — an
/// orderly `kill` is a clean shutdown, not a crash.
std::atomic<service::SocketServer *> ActiveServer{nullptr};
std::atomic<bool> SignalStop{false};

extern "C" void onTermSignal(int) {
  SignalStop.store(true, std::memory_order_release);
  if (service::SocketServer *S =
          ActiveServer.load(std::memory_order_acquire))
    S->stop();
}

void installSignalHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onTermSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // No SA_RESTART: blocking reads must wake.
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

struct DaemonOptions {
  service::Service::Options Svc;
  std::string SocketPath;
  bool Once = false;
  bool ShardCache = false;
  bool Metrics = false;
  std::string MetricsOut;
  bool Help = false;
};

void usage(const ArgParser &Parser) {
  std::fprintf(stderr,
               "usage: seldond (--socket PATH | --once) [options] DIR...\n"
               "\n"
               "Loads the repositories once, keeps the learned "
               "specification warm,\n"
               "and serves versioned JSON requests (one per line): status, "
               "query,\n"
               "learn, feedback, taint, shutdown.\n"
               "\n"
               "options:\n%s",
               Parser.usage().c_str());
}

bool parseDaemonArgs(int Argc, char **Argv, DaemonOptions &Opts,
                     ArgParser &Parser) {
  unsigned long Iters = 600;
  unsigned long Cutoff = 5;
  unsigned long Jobs = 0;
  unsigned long MaxInFlight = 64;
  unsigned long SnapshotEvery = 1;
  std::string Backend = "compiled";
  bool LegacySolver = false;

  Parser.string("--socket", &Opts.SocketPath, "PATH",
                "serve on a Unix domain socket at PATH");
  Parser.flag("--once", &Opts.Once,
              "serve stdin/stdout serially instead of a socket");
  Parser.string("--seed", &Opts.Svc.SeedFile, "FILE",
                "seed specification (App. B format; default: built-in)");
  Parser.string("--cache-dir", &Opts.Svc.CacheDir, "DIR",
                "persistent propagation-graph cache; unchanged projects\n"
                "skip parsing on restart");
  Parser.flag("--shard-cache", &Opts.ShardCache,
              "also cache per-project constraint shards under\n"
              "DIR/shards (requires --cache-dir); a `learn` with\n"
              "\"reload\" then re-extracts only changed projects");
  Parser.string("--state-dir", &Opts.Svc.StateDir, "DIR",
                "durable state: journal every accepted feedback/learn op\n"
                "(fsynced before the re-solve), snapshot the served spec,\n"
                "and recover the exact pre-crash state on restart");
  Parser.unsignedInt("--snapshot-every", &SnapshotEvery, "N",
                     "with --state-dir: snapshot + compact the journal\n"
                     "after every Nth applied op (default 1; 0 = only on\n"
                     "orderly shutdown)");
  Parser.unsignedInt("--iters", &Iters, "N",
                     "solver iterations (default 600)");
  Parser.unsignedInt("--cutoff", &Cutoff, "N",
                     "representation frequency cutoff (default 5)");
  Parser.unsignedInt("--jobs", &Jobs, "N",
                     "worker threads (default: all hardware threads)");
  Parser.decimal("--threshold", &Opts.Svc.Threshold, "T",
                 "score threshold for taint/status (default 0.1)");
  Parser.decimal("--deadline-s", &Opts.Svc.RequestDeadlineSeconds, "S",
                 "default per-request wall-clock budget in seconds\n"
                 "(0 = unlimited; requests may override via deadline_s)");
  Parser.unsignedInt("--max-inflight", &MaxInFlight, "N",
                     "admission slots; excess requests get a structured\n"
                     "`overloaded` error (default 64)");
  Parser.flag("--strict", &Opts.Svc.Strict,
              "fail startup on the first broken project instead of\n"
              "quarantining it");
  Parser.string("--solver-backend", &Backend, "B",
                "evaluator backend: legacy|compiled|simd|simd-f32\n"
                "(default compiled); `learn` requests may override\n"
                "per-request with a \"backend\" param");
  Parser.flag("--legacy-solver", &LegacySolver,
              "solve with the uncompiled reference evaluator\n"
              "(alias for --solver-backend=legacy)");
  Parser.flag("--metrics", &Opts.Metrics,
              "print the metrics snapshot to stderr on exit");
  Parser.string("--metrics-out", &Opts.MetricsOut, "F",
                "write the metrics snapshot as JSON to F on exit");
  Parser.flag("--help", &Opts.Help, "show this help");

  if (!Parser.parse(Argc, Argv, 1, &Opts.Svc.CorpusDirs))
    return false;

  if (Iters == 0 || Iters > 10'000'000) {
    std::fprintf(stderr, "error: --iters must be in [1, 10000000]\n");
    return false;
  }
  Opts.Svc.Iterations = static_cast<int>(Iters);
  Opts.Svc.RepCutoff = static_cast<size_t>(Cutoff);
  if (Opts.Svc.RequestDeadlineSeconds < 0.0) {
    std::fprintf(stderr, "error: --deadline-s must be non-negative\n");
    return false;
  }
  unsigned long JobCap = 8ul * ThreadPool::hardwareConcurrency();
  if (Jobs > JobCap) {
    std::fprintf(stderr,
                 "warning: --jobs %lu exceeds %lu (8x hardware threads); "
                 "clamping to %lu\n",
                 Jobs, JobCap, JobCap);
    Jobs = JobCap;
  }
  Opts.Svc.Jobs = static_cast<unsigned>(Jobs);
  if (MaxInFlight == 0) {
    std::fprintf(stderr, "error: --max-inflight must be positive\n");
    return false;
  }
  Opts.Svc.MaxInFlight = static_cast<size_t>(MaxInFlight);
  Opts.Svc.SnapshotEvery = static_cast<uint64_t>(SnapshotEvery);
  if (SnapshotEvery != 1 && Opts.Svc.StateDir.empty()) {
    std::fprintf(stderr, "error: --snapshot-every requires --state-dir\n");
    return false;
  }
  if (!solver::parseSolverBackend(Backend, Opts.Svc.Backend)) {
    std::fprintf(stderr,
                 "error: unknown --solver-backend '%s' (expected "
                 "legacy|compiled|simd|simd-f32)\n",
                 Backend.c_str());
    return false;
  }
  if (LegacySolver)
    Opts.Svc.Backend = solver::SolverBackend::Legacy;
  if (Opts.ShardCache) {
    if (Opts.Svc.CacheDir.empty()) {
      std::fprintf(stderr, "error: --shard-cache requires --cache-dir\n");
      return false;
    }
    Opts.Svc.ShardCacheDir = Opts.Svc.CacheDir + "/shards";
  }
  return true;
}

/// The `--once` transport: one request per stdin line, one response per
/// stdout line, flushed eagerly so a driving script can interleave.
int runOnce(service::Service &Svc) {
  std::string Line;
  // A SIGTERM/SIGINT interrupts the blocking read (no SA_RESTART), the
  // stream fails, and the loop exits into the orderly shutdown path.
  while (!SignalStop.load(std::memory_order_acquire) &&
         std::getline(std::cin, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    std::string Response = Svc.serve(Line);
    std::fputs(Response.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
    if (Svc.shuttingDown())
      break;
  }
  return 0;
}

int runSocket(service::Service &Svc, const std::string &SocketPath) {
  ThreadPool Pool(Svc.options().Jobs);
  service::SocketServer Server(Svc, Pool, SocketPath);
  std::string Error;
  if (!Server.listen(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "seldond: listening on %s\n", SocketPath.c_str());
  // Publish the server for the signal handler; a SIGTERM from here on
  // drives stop() → drain → the normal return path below (which removes
  // the socket file and lets main() write the final snapshot).
  ActiveServer.store(&Server, std::memory_order_release);
  if (SignalStop.load(std::memory_order_acquire))
    Server.stop(); // Signal raced the publication; don't serve forever.
  size_t Connections = Server.run();
  ActiveServer.store(nullptr, std::memory_order_release);
  std::fprintf(stderr, "seldond: served %zu connection(s), draining\n",
               Connections);
  return 0;
}

bool emitMetrics(const DaemonOptions &Opts) {
  if (!Opts.Metrics && Opts.MetricsOut.empty())
    return true;
  metrics::Registry &Reg = metrics::Registry::global();
  if (Opts.Metrics)
    std::fputs(Reg.renderText().c_str(), stderr);
  if (!Opts.MetricsOut.empty()) {
    std::ofstream Out(Opts.MetricsOut, std::ios::binary | std::ios::trunc);
    if (Out)
      Out << Reg.toJson();
    if (!Out) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   Opts.MetricsOut.c_str());
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  ArgParser Parser;
  if (!parseDaemonArgs(Argc, Argv, Opts, Parser))
    return 1;
  if (Opts.Help) {
    usage(Parser);
    return 0;
  }
  if (!Opts.Once && Opts.SocketPath.empty()) {
    std::fprintf(stderr, "error: need --socket PATH or --once\n");
    usage(Parser);
    return 1;
  }
  if (Opts.Once && !Opts.SocketPath.empty()) {
    std::fprintf(stderr, "error: --once and --socket are exclusive\n");
    return 1;
  }
  if (Opts.Svc.CorpusDirs.empty()) {
    std::fprintf(stderr, "error: no corpus directories\n");
    usage(Parser);
    return 1;
  }

  std::string FaultError;
  if (!fault::configureFromEnv(&FaultError)) {
    std::fprintf(stderr, "error: SELDON_FAULT: %s\n", FaultError.c_str());
    return 1;
  }

  // Always on: metrics are write-only (they never change an answer) and
  // the `status` op reports parse/cache counters from this registry —
  // that's how the smoke test proves warm queries re-parse nothing.
  metrics::Registry::global().setEnabled(true);

  service::Service Svc(Opts.Svc);
  std::string Error;
  if (!Svc.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  const infer::PipelineResult &Warm = Svc.warm();
  std::fprintf(stderr,
               "seldond: warm — %zu project(s), %zu file(s), %zu "
               "constraint(s), spec size %zu, health %s\n",
               Opts.Svc.CorpusDirs.size(), Warm.NumFiles,
               Warm.System.Constraints.size(), Warm.Learned.size(),
               infer::runStatusName(Warm.Health.status()));

  installSignalHandlers();

  int Rc;
  try {
    Rc = Opts.Once ? runOnce(Svc) : runSocket(Svc, Opts.SocketPath);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "error: %s\n", E.what());
    Rc = 1;
  }
  // Orderly shutdown (EOF, `shutdown` request, or SIGTERM/SIGINT): write
  // the final snapshot so restart recovers without replaying the journal.
  Svc.persist();
  if (SignalStop.load(std::memory_order_acquire))
    std::fprintf(stderr, "seldond: terminated by signal, state persisted\n");
  if (!emitMetrics(Opts) && Rc == 0)
    Rc = 1;
  return Rc;
}
