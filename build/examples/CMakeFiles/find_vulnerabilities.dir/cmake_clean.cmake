file(REMOVE_RECURSE
  "CMakeFiles/find_vulnerabilities.dir/find_vulnerabilities.cpp.o"
  "CMakeFiles/find_vulnerabilities.dir/find_vulnerabilities.cpp.o.d"
  "find_vulnerabilities"
  "find_vulnerabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_vulnerabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
