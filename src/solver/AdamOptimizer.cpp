//===- solver/AdamOptimizer.cpp - Projected Adam descent ------------------===//

#include "solver/AdamOptimizer.h"

#include <cmath>

using namespace seldon;
using namespace seldon::solver;

SolveResult AdamOptimizer::minimize(const Objective &Obj) const {
  return minimize(Obj, Obj.initialPoint());
}

SolveResult AdamOptimizer::minimize(const Objective &Obj,
                                    std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  const size_t N = Obj.numVars();
  std::vector<double> M(N, 0.0), V(N, 0.0), Grad, Mapped;
  std::vector<double> Best = Result.X;
  double BestValue = Obj.value(Result.X);

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    Obj.gradient(Result.X, Grad);

    // Stationarity test via the projected-gradient mapping: at a solution,
    // a plain projected step does not move the iterate. (Comparing
    // objective values is unreliable here: an iterate pinned to the box
    // boundary by leftover momentum keeps the objective constant without
    // being optimal.)
    Mapped = Result.X;
    for (size_t I = 0; I < N; ++I)
      Mapped[I] -= Options.LearningRate * Grad[I];
    Obj.project(Mapped);
    double StepNorm = 0.0;
    for (size_t I = 0; I < N; ++I)
      StepNorm = std::max(StepNorm, std::abs(Mapped[I] - Result.X[I]));
    if (StepNorm < Options.Tolerance) {
      Result.Converged = true;
      Result.Iterations = Iter;
      if (Options.OnIteration)
        Options.OnIteration(Iter, Obj.value(Result.X));
      break;
    }

    double Beta1T = std::pow(Options.Beta1, Iter);
    double Beta2T = std::pow(Options.Beta2, Iter);
    for (size_t I = 0; I < N; ++I) {
      M[I] = Options.Beta1 * M[I] + (1.0 - Options.Beta1) * Grad[I];
      V[I] = Options.Beta2 * V[I] + (1.0 - Options.Beta2) * Grad[I] * Grad[I];
      double MHat = M[I] / (1.0 - Beta1T);
      double VHat = V[I] / (1.0 - Beta2T);
      Result.X[I] -=
          Options.LearningRate * MHat / (std::sqrt(VHat) + Options.Epsilon);
    }
    Obj.project(Result.X);
    Result.Iterations = Iter;

    // Subgradient iterations are not monotone; keep the best point seen.
    double Current = Obj.value(Result.X);
    if (Current < BestValue) {
      BestValue = Current;
      Best = Result.X;
    }
    if (Options.OnIteration)
      Options.OnIteration(Iter, Current);
  }

  double FinalValue = Obj.value(Result.X);
  if (FinalValue <= BestValue) {
    Result.FinalObjective = FinalValue;
  } else {
    Result.X = std::move(Best);
    Result.FinalObjective = BestValue;
  }
  return Result;
}
