//===- infer/Pipeline.cpp - Seldon end-to-end inference -------------------===//

#include "infer/Pipeline.h"

#include "constraints/ConstraintShard.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>

using namespace seldon;
using namespace seldon::infer;
using namespace seldon::propgraph;

const char *seldon::infer::phaseName(Phase P) {
  switch (P) {
  case Phase::BuildGraph:
    return "parse";
  case Phase::GenerateConstraints:
    return "constraints";
  case Phase::Solve:
    return "solve";
  }
  return "?";
}

Session::Session(PipelineOptions Opts) : Opts(std::move(Opts)) {}
Session::~Session() = default;
Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;

unsigned Session::resolveJobs() const {
  return Opts.Jobs == 0 ? ThreadPool::hardwareConcurrency() : Opts.Jobs;
}

ThreadPool *Session::poolFor(unsigned Jobs) {
  if (Jobs <= 1)
    return nullptr;
  if (!Pool || Pool->numWorkers() != Jobs)
    Pool = std::make_unique<ThreadPool>(Jobs);
  return Pool.get();
}

Session &Session::addProject(const pysem::Project &Proj) {
  assert(!GraphReady && "cannot add projects after the graph is built");
  Projects.push_back(&Proj);
  return *this;
}

Session &Session::addProjects(const std::vector<pysem::Project> &Corpus) {
  for (const pysem::Project &Proj : Corpus)
    addProject(Proj);
  return *this;
}

Session &Session::enableCache(const std::string &Dir) {
  assert(!GraphReady && "enableCache must precede buildGraph");
  Cache = std::make_unique<cache::GraphCache>(Dir);
  return *this;
}

Session &Session::enableShardCache(const std::string &Dir) {
  assert(!GraphReady && "enableShardCache must precede buildGraph");
  SCache = std::make_unique<cache::ShardCache>(Dir);
  return *this;
}

Session &Session::adoptGraph(PropagationGraph NewGraph) {
  Graph = std::move(NewGraph);
  GraphReady = true;
  NumFiles = Graph.files().size();
  BuildSeconds = 0.0;
  BuildShardSeconds.clear();
  SystemReady = false;
  // An adopted graph has no per-project structure to slice shards from;
  // generateConstraints falls back to direct generation.
  Slices.clear();
  SlicesValid = false;
  return *this;
}

void Session::armDeadline() {
  if (!RunDeadline.armed())
    RunDeadline.arm(Opts.DeadlineSeconds);
}

Session &Session::buildGraph() {
  if (GraphReady)
    return *this;
  armDeadline();
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::BuildGraph);

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span BuildSpan(Reg, "session/parse");
  metrics::TimerStat *ProjectTimer =
      Reg.enabled() ? &Reg.timer("build.project_seconds") : nullptr;
  const size_t Total = Projects.size();
  std::vector<PropagationGraph> PerProject(Total);
  std::vector<cache::CacheKey> Keys(Total);
  BuildShardSeconds.assign(P ? P->numWorkers() : 1, 0.0);

  // Per-project isolation boundary. Failures land in per-index slots, so
  // the quarantine set, its order, and (under Strict) the surfaced
  // exception are all independent of the thread schedule.
  std::vector<std::string> FailReason(Total);
  std::vector<std::exception_ptr> FailCause(Total);
  std::vector<uint8_t> FailedAt(Total, 0);
  std::atomic<bool> AnyFailed{false};
  std::mutex HealthMutex; // Guards Health.CacheIncidents during fan-out.

  std::mutex ProgressMutex;
  size_t Done = 0;
  auto BuildOne = [&](size_t I, unsigned Worker) {
    // Strict fail-fast: once one project failed, skip the rest (the
    // captured exception rethrows after the join).
    if (Opts.Strict && AnyFailed.load(std::memory_order_relaxed))
      return;
    Timer ShardTimer;
    bool Loaded = false;
    try {
      if (RunDeadline.expired())
        throw DeadlineError("run deadline expired before project build");
      if (fault::enabled())
        fault::maybeThrow(fault::Point::Parse, I);
      // With a cache, try to adopt the stored frontend output; the codec
      // is canonical, so a hit is structurally identical to a fresh build
      // and every downstream stage stays bit-deterministic. Misses
      // (including evicted corrupt entries) rebuild and write back. A
      // *throwing* cache (filesystem exceptions, injected faults) is
      // degraded to a rebuild / skipped write-back, never a quarantine:
      // the cache is transparent, so the run stays byte-identical.
      std::optional<PropagationGraph> FromCache;
      cache::CacheKey Key;
      // The shard cache keys off the graph key even when the graph cache
      // itself is disabled.
      if (Cache || SCache) {
        Key = cache::projectCacheKey(*Projects[I], Opts.Build);
        Keys[I] = Key;
      }
      if (Cache) {
        try {
          if (fault::enabled())
            fault::maybeThrow(fault::Point::CacheRead, I);
          FromCache = Cache->load(Key);
        } catch (const std::exception &E) {
          std::lock_guard<std::mutex> Lock(HealthMutex);
          Health.CacheIncidents.push_back(
              "project " + Projects[I]->name() +
              ": cache read degraded to rebuild: " + E.what());
        }
      }
      if (FromCache) {
        PerProject[I] = std::move(*FromCache);
        Loaded = true;
      } else {
        PerProject[I] = buildProjectGraph(*Projects[I], Opts.Build);
        if (fault::enabled())
          fault::maybeThrow(fault::Point::GraphBuild, I);
        if (Cache) {
          try {
            if (fault::enabled())
              fault::maybeThrow(fault::Point::CacheWrite, I);
            Cache->store(Key, PerProject[I]);
          } catch (const std::exception &E) {
            std::lock_guard<std::mutex> Lock(HealthMutex);
            Health.CacheIncidents.push_back(
                "project " + Projects[I]->name() +
                ": cache write skipped: " + E.what());
          }
        }
      }
    } catch (...) {
      // Quarantine: drop any partial graph so the merge below sees either
      // a complete per-project graph or nothing.
      PerProject[I] = PropagationGraph();
      FailCause[I] = std::current_exception();
      try {
        throw;
      } catch (const std::exception &E) {
        FailReason[I] = E.what();
      } catch (...) {
        FailReason[I] = "unknown exception";
      }
      FailedAt[I] = 1;
      AnyFailed.store(true, std::memory_order_relaxed);
    }
    double Seconds = ShardTimer.seconds();
    BuildShardSeconds[Worker] += Seconds;
    if (ProjectTimer && !Loaded && !FailedAt[I])
      ProjectTimer->record(Seconds);
    if (Observer) {
      std::lock_guard<std::mutex> Lock(ProgressMutex);
      Observer->onProjectGraphBuilt(++Done, Total);
    }
  };
  if (P)
    P->parallelFor(Total, BuildOne);
  else
    for (size_t I = 0; I < Total; ++I)
      BuildOne(I, 0);

  if (Opts.Strict && AnyFailed.load(std::memory_order_relaxed)) {
    for (size_t I = 0; I < Total; ++I)
      if (FailedAt[I])
        std::rethrow_exception(FailCause[I]);
  }

  // Deterministic merge: append the survivors in corpus order, so event
  // ids and file indices are identical to a serial walk over only the
  // surviving projects — quarantined ones contribute nothing. With a
  // shard cache, each survivor's file range within the global graph is
  // recorded so generateConstraints can slice its shard back out.
  NumFiles = 0;
  Slices.clear();
  bool DeadlineHit = false;
  for (size_t I = 0; I < Total; ++I) {
    if (FailedAt[I]) {
      Health.Quarantined.push_back(
          {I, Projects[I]->name(), FailReason[I]});
      if (FailCause[I]) {
        try {
          std::rethrow_exception(FailCause[I]);
        } catch (const DeadlineError &) {
          DeadlineHit = true;
        } catch (...) {
        }
      }
      PerProject[I] = PropagationGraph();
      continue;
    }
    NumFiles += Projects[I]->modules().size();
    uint32_t FileBegin = static_cast<uint32_t>(Graph.files().size());
    Graph.append(PerProject[I]);
    if (SCache)
      Slices.push_back({I, Keys[I], FileBegin,
                        static_cast<uint32_t>(Graph.files().size())});
    PerProject[I] = PropagationGraph(); // Free as we go.
  }
  SlicesValid = SCache != nullptr;
  if (DeadlineHit) {
    Health.DeadlineExpired = true;
    Health.DeadlineStage = phaseName(Phase::BuildGraph);
  }
  BuildSeconds = BuildSpan.finish();
  if (Reg.enabled()) {
    Reg.gauge("build.projects").set(static_cast<double>(Total));
    Reg.gauge("build.files").set(static_cast<double>(NumFiles));
    Reg.gauge("build.events").set(static_cast<double>(Graph.numEvents()));
    if (!Health.Quarantined.empty())
      Reg.counter("health.quarantined").add(Health.Quarantined.size());
    if (!Health.CacheIncidents.empty())
      Reg.counter("health.cache_incidents")
          .add(Health.CacheIncidents.size());
  }
  if (Observer)
    Observer->onStageFinished(Phase::BuildGraph, BuildSeconds);
  GraphReady = true;
  return *this;
}

Session &Session::generateConstraints(const spec::SeedSpec &Seed) {
  buildGraph();
  armDeadline(); // adoptGraph() skips buildGraph's arming.
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::GenerateConstraints);

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span GenSpan(Reg, "session/constraints");
  const PropagationGraph *LearnGraph = &Graph;
  PropagationGraph Collapsed;
  if (Opts.CollapseForLearning) {
    Collapsed = Graph.collapseByRep();
    LearnGraph = &Collapsed;
  }
  // Representation frequencies always come from the uncollapsed graph:
  // contraction collapses every representation to one occurrence, which
  // would starve the §4.3 frequency cutoff.
  Reps = RepTable();
  Reps.countOccurrences(Graph);
  Incr = IncrStats();
  // The incremental path composes per-project shards; it requires the
  // per-project slices buildGraph records (adopted graphs have none) and
  // an uncollapsed learning graph — vertex contraction crosses project
  // boundaries, so a collapsed system is not per-project composable.
  bool UseShards = SCache && SlicesValid && !Opts.CollapseForLearning;
  try {
    if (UseShards)
      System = composeFromShards(Seed, P);
    else
      System = constraints::generateConstraints(*LearnGraph, Reps, Seed,
                                                Opts.Gen, P,
                                                &GenShardSeconds,
                                                &RunDeadline);
  } catch (const DeadlineError &) {
    // Constraint generation is all-or-nothing (a truncated system would
    // change the learned scores silently), so expiry propagates — but the
    // health report records which stage the budget killed.
    Health.DeadlineExpired = true;
    Health.DeadlineStage = phaseName(Phase::GenerateConstraints);
    throw;
  }
  SystemFromShards = UseShards;
  GenSeconds = GenSpan.finish();
  if (Reg.enabled()) {
    Reg.gauge("gen.constraints")
        .set(static_cast<double>(System.Constraints.size()));
    Reg.gauge("gen.vars").set(static_cast<double>(System.Vars.numVars()));
    Reg.gauge("gen.candidates")
        .set(static_cast<double>(System.NumCandidates));
    Reg.gauge("gen.avg_backoff").set(System.AvgBackoffOptions);
    Reg.gauge("gen.pinned").set(static_cast<double>(System.Pinned.size()));
    if (UseShards) {
      Reg.gauge("incr.shards_hit")
          .set(static_cast<double>(Incr.ShardsHit));
      Reg.gauge("incr.shards_rebuilt")
          .set(static_cast<double>(Incr.ShardsRebuilt));
      Reg.gauge("incr.shards_stored")
          .set(static_cast<double>(Incr.ShardsStored));
    }
  }
  if (Observer)
    Observer->onStageFinished(Phase::GenerateConstraints, GenSeconds);
  SystemReady = true;
  return *this;
}

constraints::ConstraintSystem
Session::composeFromShards(const spec::SeedSpec &Seed, ThreadPool *P) {
  metrics::Registry &Reg = metrics::Registry::global();
  const size_t N = Slices.size();
  std::vector<constraints::ConstraintShard> Shards(N);
  std::vector<uint8_t> Hit(N, 0), Stored(N, 0);
  std::mutex HealthMutex;
  GenShardSeconds.assign(P ? P->numWorkers() : 1, 0.0);

  // Load-or-extract fans out over projects; each worker touches disjoint
  // slots. Like the graph cache, a *throwing* shard cache degrades to a
  // re-extraction / skipped write-back — the cache is transparent, so the
  // composed system stays byte-identical either way.
  auto ShardOne = [&](size_t I, unsigned Worker) {
    // Cooperative cancellation at the project boundary: composition is
    // all-or-nothing, so expiry is a hard error (rethrown
    // deterministically by parallelFor).
    if (RunDeadline.expired())
      throw DeadlineError("deadline expired during shard extraction");
    Timer ShardTimer;
    const ProjectSlice &Slice = Slices[I];
    cache::CacheKey Key =
        cache::projectShardKey(Slice.GraphKey, Opts.Gen, Seed);
    std::optional<constraints::ConstraintShard> FromCache;
    try {
      FromCache = SCache->load(Key);
    } catch (const std::exception &E) {
      std::lock_guard<std::mutex> Lock(HealthMutex);
      Health.CacheIncidents.push_back(
          "project " + Projects[Slice.ProjectIndex]->name() +
          ": shard read degraded to re-extraction: " + E.what());
    }
    if (FromCache) {
      Shards[I] = std::move(*FromCache);
      Hit[I] = 1;
    } else {
      if (fault::enabled())
        fault::maybeThrow(fault::Point::ConstraintGen, I);
      Shards[I] = constraints::extractShard(Graph, Slice.FileBegin,
                                            Slice.FileEnd);
      try {
        if (SCache->store(Key, Shards[I]))
          Stored[I] = 1;
      } catch (const std::exception &E) {
        std::lock_guard<std::mutex> Lock(HealthMutex);
        Health.CacheIncidents.push_back(
            "project " + Projects[Slice.ProjectIndex]->name() +
            ": shard write skipped: " + E.what());
      }
    }
    GenShardSeconds[Worker] += ShardTimer.seconds();
  };
  if (P)
    P->parallelFor(N, ShardOne);
  else
    for (size_t I = 0; I < N; ++I)
      ShardOne(I, 0);

  for (size_t I = 0; I < N; ++I) {
    Incr.ShardsHit += Hit[I];
    Incr.ShardsRebuilt += 1 - Hit[I];
    Incr.ShardsStored += Stored[I];
  }

  // Deterministic delta merge: replay the shards in corpus order. The
  // merge is serial — it is cheap relative to extraction — so the result
  // is byte-identical to direct generation at any Jobs value.
  Timer MergeTimer;
  std::vector<const constraints::ConstraintShard *> Ptrs;
  Ptrs.reserve(N);
  for (const constraints::ConstraintShard &Shard : Shards)
    Ptrs.push_back(&Shard);
  constraints::ConstraintSystem Sys = constraints::composeConstraints(
      Graph, Reps, Seed, Ptrs, Opts.Gen, P, &RunDeadline);
  if (Reg.enabled())
    Reg.timer("incr.merge_seconds").record(MergeTimer.seconds());
  return Sys;
}

bool Session::pinVariable(const std::string &Rep, propgraph::Role R,
                          double Value) {
  assert(SystemReady &&
         "Session::pinVariable() requires generateConstraints() first");
  propgraph::RepId Id;
  constraints::VarId V;
  if (!Reps.lookup(Rep, Id) || !System.Vars.lookup(Id, R, V))
    return false;
  for (auto &[Var, Pinned] : System.Pinned)
    if (Var == V) {
      Pinned = Value;
      return true;
    }
  System.Pinned.emplace_back(V, Value);
  return true;
}

PipelineResult Session::solve() {
  assert(SystemReady &&
         "Session::solve() requires generateConstraints() first");
  armDeadline();
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::Solve);

  PipelineResult Result;
  Result.Graph = Graph;
  Result.Reps = Reps;
  Result.System = System;
  Result.NumFiles = NumFiles;
  Result.BuildSeconds = BuildSeconds;
  Result.BuildShardSeconds = BuildShardSeconds;
  Result.GenSeconds = GenSeconds;
  Result.GenShardSeconds = GenShardSeconds;
  Result.JobsUsed = Jobs;
  Result.UsedCache = Cache != nullptr;
  if (Cache)
    Result.Cache = Cache->stats();
  Result.UsedShardCache = SystemFromShards;
  if (SCache)
    Result.ShardCacheStats = SCache->stats();

  // Feedback reweighting: append the evidence rows to this solve's copy
  // of the system (the session's own System stays row-clean, so dropping
  // the feedback later needs no regeneration). The rows are ordinary
  // constraints, so every backend sees them identically; an empty set
  // appends nothing and the run is byte-identical to the passive path.
  if (Opts.Feedback && !Opts.Feedback->empty()) {
    Result.UsedFeedback = true;
    Result.Feedback = constraints::applyFeedback(
        Result.System, Result.Reps, *Opts.Feedback, Opts.FeedbackOpts);
  }

  solver::SolveOptions SolveOpts = Opts.Solve;
  if (Opts.WarmStart) {
    // Seed each variable with the previous run's score for its
    // (representation, role); variables new to this system start at the
    // cold init (zero — scores for unseen representations are zero, and
    // minimize() projects the point, re-applying the seed pins). A
    // warm start moves only the starting iterate: the objective, its
    // minimizers, and the convergence test are unchanged.
    const constraints::VarTable &Vars = Result.System.Vars;
    std::vector<double> Warm(Vars.numVars(), 0.0);
    for (uint32_t V = 0; V < Vars.numVars(); ++V) {
      const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
      Warm[V] = Opts.WarmStart->score(Rep, Vars.roleOf(V));
    }
    SolveOpts.WarmStart = std::move(Warm);
  }
  Incr.WarmStarted = Opts.WarmStart != nullptr;
  Result.Incr = Incr;
  if (RunDeadline.armed()) {
    // Cap the solver's own budget by what the run budget has left, and let
    // it poll the shared deadline between iterations.
    double Remaining = RunDeadline.remainingSeconds();
    if (SolveOpts.BudgetSeconds <= 0.0 ||
        Remaining < SolveOpts.BudgetSeconds)
      SolveOpts.BudgetSeconds = std::max(Remaining, 1e-9);
    const Deadline *StopAt = &RunDeadline;
    auto UserStop = SolveOpts.ShouldStop;
    SolveOpts.ShouldStop = [StopAt, UserStop]() {
      return StopAt->expired() || (UserStop && UserStop());
    };
  }
  if (Observer) {
    ProgressObserver *Obs = Observer;
    auto UserCallback = SolveOpts.OnIteration;
    SolveOpts.OnIteration = [Obs, UserCallback](int Iter, double Value) {
      if (UserCallback)
        UserCallback(Iter, Value);
      Obs->onSolveIteration(Iter, Value);
    };
  }

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span SolveSpan(Reg, "session/solve");
  // Either evaluator runs the same optimizer loop over the same system;
  // the learned scores are byte-identical (see docs/architecture.md).
  auto RunSolver = [&](const auto &Obj) {
    if (Opts.UseAdam) {
      solver::AdamOptimizer Optimizer(SolveOpts);
      Result.Solve = Optimizer.minimize(Obj);
    } else {
      solver::ProjectedGradient Optimizer(SolveOpts);
      Result.Solve = Optimizer.minimize(Obj);
    }
  };
  Result.Backend = SolveOpts.Backend;
  switch (SolveOpts.Backend) {
  case solver::SolverBackend::Legacy: {
    solver::Objective Obj = Result.System.makeObjective(Opts.Lambda);
    Obj.setThreadPool(P);
    RunSolver(Obj);
    break;
  }
  case solver::SolverBackend::Compiled: {
    solver::CompiledObjective Obj =
        Result.System.makeCompiledObjective(Opts.Lambda);
    Obj.setThreadPool(P);
    Result.UsedCompiledSolver = true;
    Result.SolverStats = Obj.stats();
    RunSolver(Obj);
    break;
  }
  case solver::SolverBackend::Simd:
  case solver::SolverBackend::SimdF32: {
    solver::SimdObjective Obj = Result.System.makeSimdObjective(
        Opts.Lambda, SolveOpts.Backend == solver::SolverBackend::SimdF32
                         ? solver::SimdPrecision::F32
                         : solver::SimdPrecision::F64);
    Obj.setThreadPool(P);
    Result.UsedCompiledSolver = true;
    Result.SolverStats = Obj.stats();
    Result.SimdActive = Obj.simdActive();
    RunSolver(Obj);
    break;
  }
  }
  Result.SolveSeconds = SolveSpan.finish();

  // Fold solver guard activity into the run health report.
  Health.SolverNonFiniteSteps = Result.Solve.NonFiniteSteps;
  Health.SolverRecoveries = Result.Solve.Recoveries;
  Health.SolverFellBack = Result.Solve.FellBack;
  if (Result.Solve.DeadlineExpired && !Health.DeadlineExpired) {
    Health.DeadlineExpired = true;
    Health.DeadlineStage = phaseName(Phase::Solve);
  }
  Result.Health = Health;

  if (Reg.enabled()) {
    const solver::CompileStats &CS = Result.SolverStats;
    Reg.gauge("solver.rows_before").set(static_cast<double>(CS.RowsBefore));
    Reg.gauge("solver.rows_after").set(static_cast<double>(CS.RowsAfter));
    Reg.gauge("solver.terms_before")
        .set(static_cast<double>(CS.TermsBefore));
    Reg.gauge("solver.nonzeros").set(static_cast<double>(CS.NonZeros));
    Reg.gauge("solver.max_multiplicity")
        .set(static_cast<double>(CS.MaxMultiplicity));
    Reg.gauge("solver.compiled")
        .set(Result.UsedCompiledSolver ? 1.0 : 0.0);
    Reg.gauge("solver.backend")
        .set(static_cast<double>(Result.Backend));
    Reg.gauge("solver.simd_active").set(Result.SimdActive ? 1.0 : 0.0);
    Reg.gauge("solve.final_objective").set(Result.Solve.FinalObjective);
    Reg.gauge("solve.converged").set(Result.Solve.Converged ? 1.0 : 0.0);
    Reg.gauge("incr.warm_start").set(Incr.WarmStarted ? 1.0 : 0.0);
    if (Result.UsedFeedback) {
      Reg.gauge("feedback.matched")
          .set(static_cast<double>(Result.Feedback.Matched));
      Reg.gauge("feedback.unmatched")
          .set(static_cast<double>(Result.Feedback.Unmatched));
      Reg.gauge("feedback.evidence_rows")
          .set(static_cast<double>(Result.Feedback.EvidenceRows));
      Reg.gauge("feedback.propagated_rows")
          .set(static_cast<double>(Result.Feedback.PropagatedRows));
    }
    if (Health.SolverNonFiniteSteps > 0)
      Reg.counter("health.solver_nonfinite")
          .add(static_cast<uint64_t>(Health.SolverNonFiniteSteps));
    if (Health.SolverRecoveries > 0)
      Reg.counter("health.solver_recoveries")
          .add(static_cast<uint64_t>(Health.SolverRecoveries));
    Reg.gauge("health.solver_fellback")
        .set(Health.SolverFellBack ? 1.0 : 0.0);
    Reg.gauge("health.deadline_expired")
        .set(Health.DeadlineExpired ? 1.0 : 0.0);
    Reg.gauge("health.status")
        .set(static_cast<double>(Health.status()));
    if (fault::enabled())
      Reg.gauge("health.fault_trips")
          .set(static_cast<double>(fault::totalTrips()));
  }
  if (Observer)
    Observer->onStageFinished(Phase::Solve, Result.SolveSeconds);

  // Read scores back: one entry per (representation, role) variable.
  const constraints::VarTable &Vars = Result.System.Vars;
  for (uint32_t V = 0; V < Vars.numVars(); ++V) {
    const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
    Result.Learned.setScore(Rep, Vars.roleOf(V), Result.Solve.X[V]);
  }
  return Result;
}

bool Session::restoreSolve(const solver::SolveResult &Restored,
                           PipelineResult &Out) {
  assert(SystemReady &&
         "Session::restoreSolve() requires generateConstraints() first");
  if (Restored.X.size() != System.Vars.numVars())
    return false;

  // Mirror solve()'s artifact copies so a restored result is
  // indistinguishable from a freshly solved one to every consumer.
  PipelineResult Result;
  Result.Graph = Graph;
  Result.Reps = Reps;
  Result.System = System;
  Result.NumFiles = NumFiles;
  Result.BuildSeconds = BuildSeconds;
  Result.BuildShardSeconds = BuildShardSeconds;
  Result.GenSeconds = GenSeconds;
  Result.GenShardSeconds = GenShardSeconds;
  Result.JobsUsed = resolveJobs();
  Result.UsedCache = Cache != nullptr;
  if (Cache)
    Result.Cache = Cache->stats();
  Result.UsedShardCache = SystemFromShards;
  if (SCache)
    Result.ShardCacheStats = SCache->stats();

  // Feedback rows land on the result's System copy exactly as in solve():
  // a query against the restored result sees the same rows a pre-crash
  // query saw.
  if (Opts.Feedback && !Opts.Feedback->empty()) {
    Result.UsedFeedback = true;
    Result.Feedback = constraints::applyFeedback(
        Result.System, Result.Reps, *Opts.Feedback, Opts.FeedbackOpts);
  }
  Incr.WarmStarted = Opts.WarmStart != nullptr;
  Result.Incr = Incr;
  Result.Backend = Opts.Solve.Backend;
  Result.Solve = Restored;
  Result.Health = Health;

  const constraints::VarTable &Vars = Result.System.Vars;
  for (uint32_t V = 0; V < Vars.numVars(); ++V) {
    const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
    Result.Learned.setScore(Rep, Vars.roleOf(V), Result.Solve.X[V]);
  }
  Out = std::move(Result);
  return true;
}
