//===- taint/ReportRenderer.cpp - Violation ranking & formatting ----------===//

#include "taint/ReportRenderer.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

using namespace seldon;
using namespace seldon::taint;
using namespace seldon::propgraph;

double seldon::taint::endpointConfidence(const Event &E, Role R,
                                         const spec::TaintSpec *Seed,
                                         const spec::LearnedSpec *Learned,
                                         double Threshold) {
  if (Seed)
    for (const std::string &Rep : E.Reps)
      if (Seed->has(Rep, R))
        return 1.0;
  if (Learned)
    if (std::optional<double> Score = Learned->selectRole(E.Reps, R,
                                                          Threshold))
      return *Score;
  return 0.0;
}

double seldon::taint::violationConfidence(const PropagationGraph &Graph,
                                          const Violation &V,
                                          const spec::TaintSpec *Seed,
                                          const spec::LearnedSpec *Learned,
                                          double Threshold) {
  double SrcConf = endpointConfidence(Graph.event(V.Source), Role::Source,
                                      Seed, Learned, Threshold);
  double SnkConf = endpointConfidence(Graph.event(V.Sink), Role::Sink, Seed,
                                      Learned, Threshold);
  return std::min(SrcConf, SnkConf);
}

std::vector<double> seldon::taint::rankViolations(
    const PropagationGraph &Graph, std::vector<Violation> &Reports,
    const spec::TaintSpec *Seed, const spec::LearnedSpec *Learned,
    double Threshold) {
  std::vector<double> Confidence(Reports.size());
  for (size_t I = 0; I < Reports.size(); ++I)
    Confidence[I] =
        violationConfidence(Graph, Reports[I], Seed, Learned, Threshold);

  std::vector<size_t> Order(Reports.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Confidence[A] > Confidence[B];
  });

  std::vector<Violation> Sorted;
  std::vector<double> SortedConfidence;
  Sorted.reserve(Reports.size());
  SortedConfidence.reserve(Reports.size());
  for (size_t Idx : Order) {
    Sorted.push_back(std::move(Reports[Idx]));
    SortedConfidence.push_back(Confidence[Idx]);
  }
  Reports = std::move(Sorted);
  return SortedConfidence;
}

std::vector<Violation>
seldon::taint::dedupByRepPair(const PropagationGraph &Graph,
                              const std::vector<Violation> &Reports) {
  std::vector<Violation> Out;
  std::unordered_set<std::string> Seen;
  for (const Violation &V : Reports) {
    std::string Key = Graph.event(V.Source).primaryRep() + "\x1f" +
                      Graph.event(V.Sink).primaryRep();
    if (Seen.insert(std::move(Key)).second)
      Out.push_back(V);
  }
  return Out;
}

std::string seldon::taint::formatViolation(const PropagationGraph &Graph,
                                           const Violation &V) {
  const Event &Src = Graph.event(V.Source);
  const Event &Snk = Graph.event(V.Sink);
  std::string Out = formatString(
      "unsanitized flow in %s:\n  source %s (line %u)\n  sink   %s (line "
      "%u)\n  path:\n",
      Graph.files()[V.FileIdx].c_str(), Src.primaryRep().c_str(),
      Src.Loc.Line, Snk.primaryRep().c_str(), Snk.Loc.Line);
  for (EventId Id : V.Path) {
    const Event &E = Graph.event(Id);
    Out += formatString("    %s (line %u)\n", E.primaryRep().c_str(),
                        E.Loc.Line);
  }
  return Out;
}
