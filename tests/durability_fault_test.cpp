//===- tests/durability_fault_test.cpp - Durable-state corruption ---------===//
//
// Fault injection against seldond's durability layer: every truncation
// point and every bit flip of a snapshot must produce a descriptive
// error, never partial state; the journal scanner must classify a torn
// trailing frame as recoverable and everything else as corruption; and
// StateStore::recover() must evict, truncate, and fall back exactly as
// service/StateStore.h promises — mirroring cache_fault_test's contract
// for the caches.
//
//===----------------------------------------------------------------------===//

#include "service/StateCodec.h"
#include "service/StateStore.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace seldon;
using namespace seldon::service;

namespace fs = std::filesystem;

namespace {

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

std::string makeScratchDir(const std::string &Prefix) {
  static std::atomic<uint64_t> Seq{0};
  fs::path Dir = fs::temp_directory_path() /
                 (Prefix + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(Seq.fetch_add(1)));
  fs::create_directories(Dir);
  return Dir.string();
}

/// A representative record of each op, with every field load-bearing so
/// a round-trip mismatch cannot hide.
JournalRecord feedbackRecord(uint64_t Seq) {
  JournalRecord R;
  R.Seq = Seq;
  R.Op = JournalOp::Feedback;
  R.Entries.push_back({"flask.escape()", propgraph::Role::Sanitizer, true});
  R.Entries.push_back({"os.system()", propgraph::Role::Sink, false});
  R.FeedbackOpts.AcceptWeight = 2.5;
  R.FeedbackOpts.RejectWeight = 0.75;
  R.FeedbackOpts.SimilarityDecay = 0.125;
  R.Iters = 321;
  R.WarmStart = true;
  return R;
}

JournalRecord learnRecord(uint64_t Seq) {
  JournalRecord R;
  R.Seq = Seq;
  R.Op = JournalOp::Learn;
  R.Iters = 777;
  R.WarmStart = false;
  R.Reload = true;
  R.Backend = solver::SolverBackend::Simd;
  return R;
}

JournalRecord abortRecord(uint64_t Seq, uint64_t Aborted) {
  JournalRecord R;
  R.Seq = Seq;
  R.Op = JournalOp::Abort;
  R.AbortedSeq = Aborted;
  return R;
}

void expectRecordsEqual(const JournalRecord &A, const JournalRecord &B,
                        const std::string &Where) {
  EXPECT_EQ(A.Seq, B.Seq) << Where;
  EXPECT_EQ(A.Op, B.Op) << Where;
  ASSERT_EQ(A.Entries.size(), B.Entries.size()) << Where;
  for (size_t I = 0; I < A.Entries.size(); ++I) {
    EXPECT_EQ(A.Entries[I].Rep, B.Entries[I].Rep) << Where;
    EXPECT_EQ(A.Entries[I].R, B.Entries[I].R) << Where;
    EXPECT_EQ(A.Entries[I].Accepted, B.Entries[I].Accepted) << Where;
  }
  EXPECT_EQ(A.FeedbackOpts.AcceptWeight, B.FeedbackOpts.AcceptWeight)
      << Where;
  EXPECT_EQ(A.FeedbackOpts.RejectWeight, B.FeedbackOpts.RejectWeight)
      << Where;
  EXPECT_EQ(A.FeedbackOpts.SimilarityDecay, B.FeedbackOpts.SimilarityDecay)
      << Where;
  EXPECT_EQ(A.Iters, B.Iters) << Where;
  EXPECT_EQ(A.WarmStart, B.WarmStart) << Where;
  EXPECT_EQ(A.Reload, B.Reload) << Where;
  EXPECT_EQ(A.Backend, B.Backend) << Where;
  EXPECT_EQ(A.AbortedSeq, B.AbortedSeq) << Where;
}

StateSnapshot sampleSnapshot() {
  StateSnapshot S;
  S.LastSeq = 42;
  S.Fingerprint = 0x1234'5678'9abc'def0ull;
  S.Solve.X = {0.0, 1.0, 0.1, 1.0 / 3.0, 0.30000000000000004, -0.0};
  S.Solve.FinalObjective = 0.0625;
  S.Solve.Iterations = 600;
  S.Solve.Converged = true;
  S.Solve.NonFiniteSteps = 1;
  S.Solve.Recoveries = 2;
  S.Solve.FellBack = false;
  S.Solve.DeadlineExpired = false;
  S.FeedbackOpts.AcceptWeight = 1.5;
  S.FeedbackOpts.RejectWeight = 0.5;
  S.FeedbackOpts.SimilarityDecay = 0.25;
  S.Feedback.push_back({"flask.escape()", propgraph::Role::Sanitizer, true});
  S.Feedback.push_back({"eval()", propgraph::Role::Sink, true});
  return S;
}

//===----------------------------------------------------------------------===//
// Codec-level: the journal scanner
//===----------------------------------------------------------------------===//

TEST(JournalCodecTest, RoundTripsEveryOp) {
  std::vector<JournalRecord> Records = {feedbackRecord(1), learnRecord(2),
                                        abortRecord(3, 1)};
  std::string Bytes = journalHeader();
  for (const JournalRecord &R : Records)
    Bytes += encodeJournalRecord(R);

  io::IOResult<JournalScan> Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.ok()) << Scan.Error;
  EXPECT_FALSE(Scan.Value.Torn);
  EXPECT_EQ(Scan.Value.ValidBytes, Bytes.size());
  ASSERT_EQ(Scan.Value.Records.size(), Records.size());
  for (size_t I = 0; I < Records.size(); ++I)
    expectRecordsEqual(Scan.Value.Records[I], Records[I],
                       "record " + std::to_string(I));
}

TEST(JournalCodecTest, EveryTruncationIsTornOrRejectedNeverPartial) {
  std::vector<JournalRecord> Records = {feedbackRecord(1), learnRecord(2)};
  std::string Bytes = journalHeader();
  // Frame boundaries: after the header and after each complete frame.
  std::vector<size_t> Boundaries = {Bytes.size()};
  for (const JournalRecord &R : Records) {
    Bytes += encodeJournalRecord(R);
    Boundaries.push_back(Bytes.size());
  }

  for (size_t Len = 0; Len <= Bytes.size(); ++Len) {
    io::IOResult<JournalScan> Scan =
        scanJournal(std::string_view(Bytes).substr(0, Len));
    if (Len < Boundaries.front()) {
      // Inside the file header: corruption, not a torn tail.
      EXPECT_FALSE(Scan.ok()) << "header truncated to " << Len << " scanned";
      EXPECT_FALSE(Scan.Error.empty());
      EXPECT_TRUE(Scan.Value.Records.empty()) << "partial scan at " << Len;
      continue;
    }
    ASSERT_TRUE(Scan.ok()) << "length " << Len << ": " << Scan.Error;
    // The valid prefix is the largest frame boundary at or below Len, and
    // the records are exactly the complete frames before it.
    size_t Boundary = 0, NumComplete = 0;
    for (size_t I = 0; I < Boundaries.size(); ++I)
      if (Boundaries[I] <= Len) {
        Boundary = Boundaries[I];
        NumComplete = I; // Boundaries[0] is the header: 0 records.
      }
    EXPECT_EQ(Scan.Value.Torn, Len != Boundary) << "length " << Len;
    EXPECT_EQ(Scan.Value.ValidBytes, Boundary) << "length " << Len;
    ASSERT_EQ(Scan.Value.Records.size(), NumComplete) << "length " << Len;
    for (size_t I = 0; I < NumComplete; ++I)
      expectRecordsEqual(Scan.Value.Records[I], Records[I],
                         "length " + std::to_string(Len));
  }
}

TEST(JournalCodecTest, EveryBitFlipIsRejectedOrTornNeverWrong) {
  std::vector<JournalRecord> Records = {feedbackRecord(1), learnRecord(2)};
  std::string Bytes = journalHeader();
  for (const JournalRecord &R : Records)
    Bytes += encodeJournalRecord(R);

  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Mutated = Bytes;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0xff);
    io::IOResult<JournalScan> Scan = scanJournal(Mutated);
    if (!Scan.ok()) {
      EXPECT_FALSE(Scan.Error.empty()) << "flip at byte " << I;
      EXPECT_TRUE(Scan.Value.Records.empty())
          << "partial scan, flip at " << I;
      continue;
    }
    // The only acceptable success: a flipped length made the final frame
    // look incomplete — a torn tail whose surviving records are a strict
    // prefix of the originals. A full, silently-different scan is the one
    // outcome the checksum exists to prevent.
    EXPECT_TRUE(Scan.Value.Torn) << "flip at byte " << I
                                 << " scanned as a complete journal";
    ASSERT_LT(Scan.Value.Records.size(), Records.size())
        << "flip at byte " << I;
    for (size_t R = 0; R < Scan.Value.Records.size(); ++R)
      expectRecordsEqual(Scan.Value.Records[R], Records[R],
                         "flip at byte " + std::to_string(I));
  }
}

//===----------------------------------------------------------------------===//
// Codec-level: the snapshot image
//===----------------------------------------------------------------------===//

TEST(SnapshotCodecTest, RoundTripsBitExactly) {
  StateSnapshot S = sampleSnapshot();
  std::string Bytes = encodeSnapshot(S);
  io::IOResult<StateSnapshot> R = decodeSnapshot(Bytes);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Value.LastSeq, S.LastSeq);
  EXPECT_EQ(R.Value.Fingerprint, S.Fingerprint);
  ASSERT_EQ(R.Value.Solve.X.size(), S.Solve.X.size());
  for (size_t I = 0; I < S.Solve.X.size(); ++I) {
    // Bit-pattern equality, not numeric: -0.0 must survive as -0.0.
    uint64_t A, B;
    static_assert(sizeof(double) == sizeof(uint64_t), "fixed64 doubles");
    std::memcpy(&A, &R.Value.Solve.X[I], sizeof(A));
    std::memcpy(&B, &S.Solve.X[I], sizeof(B));
    EXPECT_EQ(A, B) << "X[" << I << "]";
  }
  EXPECT_EQ(R.Value.Solve.FinalObjective, S.Solve.FinalObjective);
  EXPECT_EQ(R.Value.Solve.Iterations, S.Solve.Iterations);
  EXPECT_EQ(R.Value.Solve.Converged, S.Solve.Converged);
  EXPECT_EQ(R.Value.Solve.NonFiniteSteps, S.Solve.NonFiniteSteps);
  EXPECT_EQ(R.Value.Solve.Recoveries, S.Solve.Recoveries);
  EXPECT_EQ(R.Value.Solve.FellBack, S.Solve.FellBack);
  EXPECT_EQ(R.Value.Solve.DeadlineExpired, S.Solve.DeadlineExpired);
  EXPECT_EQ(R.Value.FeedbackOpts.AcceptWeight, S.FeedbackOpts.AcceptWeight);
  EXPECT_EQ(R.Value.FeedbackOpts.RejectWeight, S.FeedbackOpts.RejectWeight);
  EXPECT_EQ(R.Value.FeedbackOpts.SimilarityDecay,
            S.FeedbackOpts.SimilarityDecay);
  ASSERT_EQ(R.Value.Feedback.size(), S.Feedback.size());
  for (size_t I = 0; I < S.Feedback.size(); ++I) {
    EXPECT_EQ(R.Value.Feedback[I].Rep, S.Feedback[I].Rep);
    EXPECT_EQ(R.Value.Feedback[I].R, S.Feedback[I].R);
    EXPECT_EQ(R.Value.Feedback[I].Accepted, S.Feedback[I].Accepted);
  }
}

TEST(SnapshotCodecTest, EveryTruncationIsRejected) {
  std::string Bytes = encodeSnapshot(sampleSnapshot());
  ASSERT_GT(Bytes.size(), 16u);
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    io::IOResult<StateSnapshot> R =
        decodeSnapshot(std::string_view(Bytes).substr(0, Len));
    EXPECT_FALSE(R.ok()) << "truncation to " << Len << " decoded";
    EXPECT_FALSE(R.Error.empty());
    // Never partial: the value stays default-constructed.
    EXPECT_EQ(R.Value.LastSeq, 0u) << "partial snapshot at " << Len;
    EXPECT_TRUE(R.Value.Solve.X.empty()) << "partial X at " << Len;
    EXPECT_TRUE(R.Value.Feedback.empty()) << "partial feedback at " << Len;
  }
}

TEST(SnapshotCodecTest, EveryBitFlipIsRejected) {
  std::string Bytes = encodeSnapshot(sampleSnapshot());
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Mutated = Bytes;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0xff);
    io::IOResult<StateSnapshot> R = decodeSnapshot(Mutated);
    EXPECT_FALSE(R.ok()) << "flip at byte " << I << " decoded";
    EXPECT_FALSE(R.Error.empty()) << "flip at byte " << I;
    EXPECT_TRUE(R.Value.Solve.X.empty()) << "partial X, flip at " << I;
  }
}

TEST(SnapshotCodecTest, TrailingGarbageIsRejected) {
  std::string Bytes = encodeSnapshot(sampleSnapshot()) + "x";
  io::IOResult<StateSnapshot> R = decodeSnapshot(Bytes);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
}

//===----------------------------------------------------------------------===//
// Store-level: recover() under every corruption class
//===----------------------------------------------------------------------===//

TEST(StateStoreTest, AppendedRecordsReplayInOrder) {
  std::string Dir = makeScratchDir("state-append");
  {
    StateStore Store(Dir);
    ASSERT_TRUE(Store.valid()) << Store.error();
    uint64_t Fsyncs0 = Store.stats().Fsyncs; // Header publish syncs too.
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(learnRecord(2), Error)) << Error;
    EXPECT_EQ(Store.stats().Appends, 2u);
    EXPECT_EQ(Store.stats().Fsyncs, Fsyncs0 + 2);
    EXPECT_GT(Store.stats().BytesAppended, 0u);
  }
  StateStore Reopened(Dir);
  ASSERT_TRUE(Reopened.valid()) << Reopened.error();
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Value.HasSnapshot);
  ASSERT_EQ(R.Value.Replay.size(), 2u);
  expectRecordsEqual(R.Value.Replay[0], feedbackRecord(1), "replay 0");
  expectRecordsEqual(R.Value.Replay[1], learnRecord(2), "replay 1");
  EXPECT_EQ(Reopened.stats().ReplayedRecords, 2u);
  fs::remove_all(Dir);
}

TEST(StateStoreTest, AbortedRecordsAreNotReplayed) {
  std::string Dir = makeScratchDir("state-abort");
  {
    StateStore Store(Dir);
    ASSERT_TRUE(Store.valid()) << Store.error();
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(learnRecord(2), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(abortRecord(3, 1), Error)) << Error;
  }
  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  // Record 1 failed after journaling (abort 3 says so); only 2 replays.
  ASSERT_EQ(R.Value.Replay.size(), 1u);
  expectRecordsEqual(R.Value.Replay[0], learnRecord(2), "survivor");
  fs::remove_all(Dir);
}

TEST(StateStoreTest, SnapshotSetsTheReplayHorizonAndCompacts) {
  std::string Dir = makeScratchDir("state-horizon");
  StateSnapshot Snap = sampleSnapshot();
  Snap.LastSeq = 2;
  {
    StateStore Store(Dir);
    ASSERT_TRUE(Store.valid()) << Store.error();
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(learnRecord(2), Error)) << Error;
    ASSERT_TRUE(Store.writeSnapshot(Snap, Error)) << Error;
    // Compaction reset the journal to a bare header...
    EXPECT_EQ(readFileBytes(Store.journalPath()), journalHeader());
    EXPECT_EQ(Store.stats().Snapshots, 1u);
    EXPECT_EQ(Store.stats().Compactions, 1u);
    // ...and later appends land in the fresh journal.
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(3), Error)) << Error;
  }
  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Value.HasSnapshot);
  EXPECT_EQ(R.Value.Snapshot.LastSeq, 2u);
  EXPECT_EQ(R.Value.Snapshot.Fingerprint, Snap.Fingerprint);
  ASSERT_EQ(R.Value.Replay.size(), 1u);
  expectRecordsEqual(R.Value.Replay[0], feedbackRecord(3), "suffix");
  fs::remove_all(Dir);
}

TEST(StateStoreTest, StaleSnapshotRecordsAreSkippedWithoutCompaction) {
  // A crash between snapshot publication and journal reset leaves the
  // journal holding records the snapshot already covers; the sequence
  // horizon must drop them.
  std::string Dir = makeScratchDir("state-precompact");
  StateSnapshot Snap = sampleSnapshot();
  Snap.LastSeq = 1;
  {
    StateStore Store(Dir);
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
  }
  // Publish the snapshot by hand — no compaction, like the crash window.
  writeFileBytes(Dir + "/state-1.ssn", encodeSnapshot(Snap));
  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Value.HasSnapshot);
  EXPECT_EQ(R.Value.Snapshot.LastSeq, 1u);
  EXPECT_TRUE(R.Value.Replay.empty()) << "covered record replayed";
  fs::remove_all(Dir);
}

TEST(StateStoreTest, TornTailIsTruncatedInPlace) {
  std::string Dir = makeScratchDir("state-torn");
  std::string JournalPath;
  {
    StateStore Store(Dir);
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(learnRecord(2), Error)) << Error;
    JournalPath = Store.journalPath();
  }
  // A crashed append: append a strict prefix of a third frame.
  std::string Valid = readFileBytes(JournalPath);
  std::string Frame = encodeJournalRecord(feedbackRecord(3));
  writeFileBytes(JournalPath, Valid + Frame.substr(0, Frame.size() / 2));

  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.Value.Replay.size(), 2u);
  EXPECT_EQ(Reopened.stats().TruncatedTailBytes, Frame.size() / 2);
  // The tail is physically gone: the file is the valid prefix again and
  // new appends extend it cleanly.
  EXPECT_EQ(readFileBytes(JournalPath), Valid);
  std::string Error;
  ASSERT_TRUE(Reopened.appendRecord(feedbackRecord(3), Error)) << Error;
  EXPECT_EQ(readFileBytes(JournalPath), Valid + Frame);
  fs::remove_all(Dir);
}

TEST(StateStoreTest, InteriorCorruptionEvictsTheJournal) {
  std::string Dir = makeScratchDir("state-evict");
  std::string JournalPath;
  {
    StateStore Store(Dir);
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    ASSERT_TRUE(Store.appendRecord(learnRecord(2), Error)) << Error;
    JournalPath = Store.journalPath();
  }
  // Flip one payload byte of the *first* frame: a complete frame that
  // fails its checksum — unrecoverable, unlike a torn tail.
  std::string Bytes = readFileBytes(JournalPath);
  size_t Mid = journalHeader().size() + 12;
  ASSERT_LT(Mid, Bytes.size());
  Bytes[Mid] = static_cast<char>(Bytes[Mid] ^ 0xff);
  writeFileBytes(JournalPath, Bytes);

  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(R.Value.Replay.empty()) << "corrupt journal replayed";
  DurabilityStats Stats = Reopened.stats();
  EXPECT_EQ(Stats.EvictedJournals, 1u);
  ASSERT_FALSE(Stats.Errors.empty());
  // The journal was rebuilt as a fresh header and is writable again.
  EXPECT_EQ(readFileBytes(JournalPath), journalHeader());
  std::string Error;
  EXPECT_TRUE(Reopened.appendRecord(feedbackRecord(1), Error)) << Error;
  fs::remove_all(Dir);
}

TEST(StateStoreTest, CorruptNewestSnapshotFallsBackToOlder) {
  std::string Dir = makeScratchDir("state-fallback");
  StateSnapshot Older = sampleSnapshot();
  Older.LastSeq = 1;
  StateSnapshot Newer = sampleSnapshot();
  Newer.LastSeq = 2;
  Newer.Fingerprint = 99;
  std::string NewerPath, OlderPath;
  {
    StateStore Store(Dir);
    std::string Error;
    OlderPath = Store.snapshotPath(1);
    NewerPath = Store.snapshotPath(2);
    // Write snapshots oldest-first without compaction-in-between pruning
    // the older one: plant both by hand.
    writeFileBytes(OlderPath, encodeSnapshot(Older));
    writeFileBytes(NewerPath, encodeSnapshot(Newer));
  }
  // Corrupt the newest.
  std::string Bytes = readFileBytes(NewerPath);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0xff);
  writeFileBytes(NewerPath, Bytes);

  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_TRUE(R.Value.HasSnapshot);
  EXPECT_EQ(R.Value.Snapshot.LastSeq, 1u) << "fell back to the older";
  DurabilityStats Stats = Reopened.stats();
  EXPECT_EQ(Stats.EvictedSnapshots, 1u);
  ASSERT_FALSE(Stats.Errors.empty());
  EXPECT_FALSE(fs::exists(NewerPath)) << "corrupt snapshot not evicted";
  EXPECT_TRUE(fs::exists(OlderPath));
  fs::remove_all(Dir);
}

TEST(StateStoreTest, AllSnapshotsCorruptDegradesToJournalOnly) {
  std::string Dir = makeScratchDir("state-allbad");
  {
    StateStore Store(Dir);
    std::string Error;
    ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
    writeFileBytes(Store.snapshotPath(1), "not a snapshot");
  }
  StateStore Reopened(Dir);
  io::IOResult<RecoveredState> R = Reopened.recover();
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Value.HasSnapshot);
  // Without a horizon the journal replays from the top.
  ASSERT_EQ(R.Value.Replay.size(), 1u);
  EXPECT_EQ(Reopened.stats().EvictedSnapshots, 1u);
  fs::remove_all(Dir);
}

TEST(StateStoreTest, SnapshotPrunesOlderSnapshots) {
  std::string Dir = makeScratchDir("state-prune");
  StateStore Store(Dir);
  std::string Error;
  StateSnapshot Snap = sampleSnapshot();
  Snap.LastSeq = 1;
  ASSERT_TRUE(Store.writeSnapshot(Snap, Error)) << Error;
  Snap.LastSeq = 5;
  ASSERT_TRUE(Store.writeSnapshot(Snap, Error)) << Error;
  EXPECT_FALSE(fs::exists(Store.snapshotPath(1))) << "old snapshot kept";
  EXPECT_TRUE(fs::exists(Store.snapshotPath(5)));
  fs::remove_all(Dir);
}

TEST(StateStoreTest, StaleTempsAreSweptOnOpen) {
  std::string Dir = makeScratchDir("state-tmp-sweep");
  { StateStore Store(Dir); } // Creates the journal.
  // Plant: aged snapshot + journal temps (crashed publishes), a fresh
  // temp (possibly a live writer), and a digits-then-letter lookalike.
  std::string OldSnapTmp = Dir + "/state-7.ssn.tmp3";
  std::string OldWalTmp = Dir + "/state.wal.tmp4";
  std::string FreshTmp = Dir + "/state-8.ssn.tmp5";
  std::string Lookalike = Dir + "/state-9.ssn.tmp6x";
  writeFileBytes(OldSnapTmp, "half-written");
  writeFileBytes(OldWalTmp, "half-written");
  writeFileBytes(FreshTmp, "in-flight");
  writeFileBytes(Lookalike, "not a temp");
  auto Old = fs::file_time_type::clock::now() - std::chrono::hours(1);
  fs::last_write_time(OldSnapTmp, Old);
  fs::last_write_time(OldWalTmp, Old);

  StateStore Reopened(Dir);
  ASSERT_TRUE(Reopened.valid()) << Reopened.error();
  EXPECT_EQ(Reopened.stats().StaleTempsRemoved, 2u);
  EXPECT_FALSE(fs::exists(OldSnapTmp));
  EXPECT_FALSE(fs::exists(OldWalTmp));
  EXPECT_TRUE(fs::exists(FreshTmp)) << "recent temp may be a live writer";
  EXPECT_TRUE(fs::exists(Lookalike)) << "non-numeric suffix is not a temp";
  fs::remove_all(Dir);
}

TEST(StateStoreTest, MetricsCountDurabilityWork) {
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.setEnabled(true);
  uint64_t Appends0 = Reg.counter("journal.appends").value();
  uint64_t Snaps0 = Reg.counter("snapshot.writes").value();

  std::string Dir = makeScratchDir("state-metrics");
  StateStore Store(Dir);
  std::string Error;
  ASSERT_TRUE(Store.appendRecord(feedbackRecord(1), Error)) << Error;
  StateSnapshot Snap = sampleSnapshot();
  Snap.LastSeq = 1;
  ASSERT_TRUE(Store.writeSnapshot(Snap, Error)) << Error;

  EXPECT_EQ(Reg.counter("journal.appends").value(), Appends0 + 1);
  EXPECT_EQ(Reg.counter("snapshot.writes").value(), Snaps0 + 1);
  Reg.setEnabled(false);
  fs::remove_all(Dir);
}

} // namespace
