file(REMOVE_RECURSE
  "CMakeFiles/q6_seed_ablation.dir/q6_seed_ablation.cpp.o"
  "CMakeFiles/q6_seed_ablation.dir/q6_seed_ablation.cpp.o.d"
  "q6_seed_ablation"
  "q6_seed_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q6_seed_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
