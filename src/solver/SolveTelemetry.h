//===- solver/SolveTelemetry.h - Optimizer convergence metrics ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared convergence telemetry for AdamOptimizer and ProjectedGradient.
/// Handles are resolved once per minimize() call, so the iteration loop
/// pays one null check when metrics are disabled and a few relaxed atomic
/// writes when enabled — never a registry lookup, and never any change to
/// the optimization trajectory (metrics are write-only).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_SOLVETELEMETRY_H
#define SELDON_SOLVER_SOLVETELEMETRY_H

#include "support/Metrics.h"

#include <cmath>
#include <vector>

namespace seldon {
namespace solver {

/// Samples per-iteration solver state (objective value, gradient norm,
/// best-iterate acceptances) into the global metrics registry. The series
/// self-decimate, so long solves stay bounded.
struct SolveTelemetry {
  metrics::Series *Objective = nullptr;
  metrics::Series *GradNorm = nullptr;
  metrics::Counter *Iterations = nullptr;
  metrics::Counter *BestUpdates = nullptr;
  metrics::Counter *Solves = nullptr;

  SolveTelemetry() {
    metrics::Registry &Reg = metrics::Registry::global();
    if (!Reg.enabled())
      return;
    Objective = &Reg.series("solve.objective");
    GradNorm = &Reg.series("solve.grad_norm");
    Iterations = &Reg.counter("solve.iterations");
    BestUpdates = &Reg.counter("solve.best_updates");
    Solves = &Reg.counter("solve.runs");
    Solves->add();
  }

  /// Gradient norms cost an O(N) sweep, so they are only computed every
  /// GradStride-th iteration; objective samples are a single store.
  static constexpr int GradStride = 8;

  void onIteration(int Iter, double Value,
                   const std::vector<double> &Grad) {
    if (!Objective)
      return;
    Iterations->add();
    Objective->record(Value);
    if (Iter % GradStride == 0 || Iter == 1) {
      double Norm = 0.0;
      for (double G : Grad)
        Norm += G * G;
      GradNorm->record(std::sqrt(Norm));
    }
  }

  /// A step produced a new best iterate (step acceptance).
  void onBestUpdate() {
    if (BestUpdates)
      BestUpdates->add();
  }
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_SOLVETELEMETRY_H
