//===- tests/solver_test.cpp - Tests for the linear-relaxation solver -----===//

#include "solver/AdamOptimizer.h"
#include "solver/ProjectedGradient.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::solver;

namespace {

SolveOptions fastOptions(int Iters = 2000, double Lr = 0.02) {
  SolveOptions O;
  O.MaxIterations = Iters;
  O.LearningRate = Lr;
  O.Tolerance = 1e-10;
  return O;
}

//===----------------------------------------------------------------------===//
// Objective mechanics
//===----------------------------------------------------------------------===//

TEST(ObjectiveTest, HingeLossComputation) {
  // Constraint: x0 <= x1 + 0.5.
  LinearConstraint C;
  C.Lhs = {{0, 1.0f}};
  C.Rhs = {{1, 1.0f}};
  C.C = 0.5;
  Objective Obj(2, {C}, 0.0);
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({1.0, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({0.2, 0.0}), 0.0);
}

TEST(ObjectiveTest, L1TermExcludesPinned) {
  Objective Obj(2, {}, 0.1);
  Obj.pin(0, 1.0);
  std::vector<double> X{1.0, 1.0};
  EXPECT_NEAR(Obj.value(X), 0.1, 1e-12);
}

TEST(ObjectiveTest, GradientOfViolatedConstraint) {
  LinearConstraint C;
  C.Lhs = {{0, 1.0f}};
  C.Rhs = {{1, 2.0f}};
  C.C = 0.0;
  Objective Obj(2, {C}, 0.0);
  std::vector<double> Grad;
  Obj.gradient({1.0, 0.1}, Grad); // 1.0 - 0.2 > 0: violated.
  EXPECT_DOUBLE_EQ(Grad[0], 1.0);
  EXPECT_DOUBLE_EQ(Grad[1], -2.0);
  Obj.gradient({0.1, 0.5}, Grad); // Satisfied: only L1 (lambda = 0).
  EXPECT_DOUBLE_EQ(Grad[0], 0.0);
  EXPECT_DOUBLE_EQ(Grad[1], 0.0);
}

TEST(ObjectiveTest, ProjectClampsAndRestoresPins) {
  Objective Obj(3, {}, 0.0);
  Obj.pin(2, 1.0);
  std::vector<double> X{-0.5, 1.5, 0.0};
  Obj.project(X);
  EXPECT_DOUBLE_EQ(X[0], 0.0);
  EXPECT_DOUBLE_EQ(X[1], 1.0);
  EXPECT_DOUBLE_EQ(X[2], 1.0);
}

TEST(ObjectiveTest, InitialPointIsFeasible) {
  Objective Obj(2, {}, 0.1);
  Obj.pin(0, 1.0);
  std::vector<double> X = Obj.initialPoint();
  EXPECT_DOUBLE_EQ(X[0], 1.0);
  EXPECT_DOUBLE_EQ(X[1], 0.0);
}

//===----------------------------------------------------------------------===//
// Optimization behaviour (paper §4.4 semantics)
//===----------------------------------------------------------------------===//

/// One pinned implication: pinned(0)=1 and pinned(1)=1 force x2 up via
/// x0 + x1 <= x2 + C. Optimum: x2 = 2 - C (clamped to <= 1).
Objective impliedVariableSystem(double C, double Lambda) {
  LinearConstraint LC;
  LC.Lhs = {{0, 1.0f}, {1, 1.0f}};
  LC.Rhs = {{2, 1.0f}};
  LC.C = C;
  Objective Obj(3, {LC}, Lambda);
  Obj.pin(0, 1.0);
  Obj.pin(1, 1.0);
  return Obj;
}

TEST(AdamTest, RaisesImpliedVariable) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  AdamOptimizer Opt(fastOptions());
  SolveResult R = Opt.minimize(Obj);
  // Violation gradient (1) beats lambda (0.1), so x2 rises to 1.25 - but
  // clamps at 1; residual violation 0.25 remains.
  EXPECT_NEAR(R.X[2], 1.0, 1e-2);
}

TEST(AdamTest, LambdaKeepsUnconstrainedVarsAtZero) {
  LinearConstraint LC; // x0 <= x1 + 1  — never violated in the box.
  LC.Lhs = {{0, 1.0f}};
  LC.Rhs = {{1, 1.0f}};
  LC.C = 1.0;
  Objective Obj(2, {LC}, 0.1);
  AdamOptimizer Opt(fastOptions());
  SolveResult R = Opt.minimize(Obj);
  EXPECT_NEAR(R.X[0], 0.0, 1e-6);
  EXPECT_NEAR(R.X[1], 0.0, 1e-6);
}

TEST(AdamTest, BalancesViolationAgainstRegularization) {
  // x0=1 pinned, x1 pinned 1; x0 + x1 <= x2 + 0.75 pushes x2 to 1;
  // with a huge lambda (2.0 > violation slope 1.0) x2 must stay 0.
  Objective Obj = impliedVariableSystem(0.75, 2.0);
  AdamOptimizer Opt(fastOptions());
  SolveResult R = Opt.minimize(Obj);
  EXPECT_NEAR(R.X[2], 0.0, 1e-3);
}

TEST(AdamTest, DistributesAcrossSum) {
  // x0 + x1 <= x2 + x3 + C with both lhs pinned at 1: the sum x2 + x3 must
  // reach 1.25; symmetric, so both rise.
  LinearConstraint LC;
  LC.Lhs = {{0, 1.0f}, {1, 1.0f}};
  LC.Rhs = {{2, 1.0f}, {3, 1.0f}};
  LC.C = 0.75;
  Objective Obj(4, {LC}, 0.05);
  Obj.pin(0, 1.0);
  Obj.pin(1, 1.0);
  AdamOptimizer Opt(fastOptions());
  SolveResult R = Opt.minimize(Obj);
  EXPECT_NEAR(R.X[2] + R.X[3], 1.25, 0.05);
}

TEST(AdamTest, PinnedZeroStaysZero) {
  Objective Obj = impliedVariableSystem(0.0, 0.0);
  Obj.pin(2, 0.0);
  AdamOptimizer Opt(fastOptions(200));
  SolveResult R = Opt.minimize(Obj);
  EXPECT_DOUBLE_EQ(R.X[2], 0.0);
}

TEST(AdamTest, ConvergesAndReportsIterations) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  SolveOptions O = fastOptions(5000);
  O.Tolerance = 1e-9;
  AdamOptimizer Opt(O);
  SolveResult R = Opt.minimize(Obj);
  EXPECT_TRUE(R.Converged);
  EXPECT_LT(R.Iterations, 5000);
}

TEST(AdamTest, WarmStartFromGivenPoint) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  AdamOptimizer Opt(fastOptions(5));
  SolveResult R = Opt.minimize(Obj, {1.0, 1.0, 0.9});
  EXPECT_GT(R.X[2], 0.8) << "warm start must be used, not reset";
}

TEST(ProjectedGradientTest, MatchesAdamOnConvexSystem) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  AdamOptimizer Adam(fastOptions(4000));
  ProjectedGradient Pgd(fastOptions(4000, 0.1));
  double A = Adam.minimize(Obj).FinalObjective;
  double P = Pgd.minimize(Obj).FinalObjective;
  EXPECT_NEAR(A, P, 0.02) << "both optimizers must find the convex optimum";
}

TEST(ProjectedGradientTest, KeepsBestIterate) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  ProjectedGradient Opt(fastOptions(50, 0.5)); // Aggressive oscillation.
  SolveResult R = Opt.minimize(Obj);
  EXPECT_LE(R.FinalObjective, Obj.value(Obj.initialPoint()) + 1e-9);
}

TEST(ProjectedGradientTest, WarmStartOverloadUsed) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  ProjectedGradient Opt(fastOptions(3, 0.01)); // Tiny budget.
  SolveResult R = Opt.minimize(Obj, {1.0, 1.0, 0.95});
  EXPECT_GT(R.X[2], 0.8) << "warm start must be used, not reset";
}

TEST(ProjectedGradientTest, WarmStartProjectedFirst) {
  Objective Obj = impliedVariableSystem(0.75, 0.1);
  Obj.pin(2, 0.0);
  ProjectedGradient Opt(fastOptions(2));
  SolveResult R = Opt.minimize(Obj, {5.0, -3.0, 0.9});
  EXPECT_DOUBLE_EQ(R.X[0], 1.0) << "pinned values restored";
  EXPECT_DOUBLE_EQ(R.X[2], 0.0) << "pin overrides warm start";
}

// Property sweep: for every slack C, the solved system drives the sum of
// RHS variables toward max(2 - C, 0) clamped into [0, 2].
class SlackSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SlackSweepTest, ResidualMatchesTheory) {
  double C = GetParam();
  LinearConstraint LC;
  LC.Lhs = {{0, 1.0f}, {1, 1.0f}};
  LC.Rhs = {{2, 1.0f}, {3, 1.0f}};
  LC.C = C;
  Objective Obj(4, {LC}, 0.01);
  Obj.pin(0, 1.0);
  Obj.pin(1, 1.0);
  AdamOptimizer Opt(fastOptions(4000));
  SolveResult R = Opt.minimize(Obj);
  double Expected = std::min(std::max(2.0 - C, 0.0), 2.0);
  EXPECT_NEAR(R.X[2] + R.X[3], Expected, 0.08) << "C = " << C;
}

INSTANTIATE_TEST_SUITE_P(Slack, SlackSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0, 1.5,
                                           2.0));

} // namespace
