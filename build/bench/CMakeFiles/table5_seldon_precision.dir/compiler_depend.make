# Empty compiler generated dependencies file for table5_seldon_precision.
# This may be replaced when dependencies are built.
