//===- service/Service.cpp - Warm inference service -----------------------===//

#include "service/Service.h"

#include "propgraph/GraphBuilder.h"
#include "pysem/ProjectLoader.h"
#include "service/FeedbackJson.h"
#include "service/QueryResult.h"
#include "spec/SpecIO.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "taint/JsonExport.h"
#include "taint/ReportRenderer.h"
#include "taint/TaintAnalyzer.h"

#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

using namespace seldon;
using namespace seldon::service;

namespace {

/// A structured operation failure; handle() turns it into an error
/// response with the carried code.
class OpError : public std::runtime_error {
public:
  OpError(ErrorCode Code, const std::string &Message)
      : std::runtime_error(Message), Code(Code) {}
  ErrorCode Code;
};

[[noreturn]] void badRequest(const std::string &Message) {
  throw OpError(ErrorCode::BadRequest, Message);
}

void checkDeadline(const Deadline &D, const char *Stage) {
  if (D.expired())
    throw DeadlineError(
        formatString("request deadline expired before %s", Stage));
}

/// Reads an optional positive-integer parameter; \p Fallback when absent.
long readIntParam(const Request &Req, const char *Name, long Fallback,
                  long Min, long Max) {
  const JsonValue *V = Req.Params.get(Name);
  if (!V)
    return Fallback;
  if (!V->isNumber() ||
      std::floor(V->numberValue()) != V->numberValue() ||
      V->numberValue() < static_cast<double>(Min) ||
      V->numberValue() > static_cast<double>(Max))
    badRequest(formatString("\"%s\" must be an integer in [%ld, %ld]", Name,
                            Min, Max));
  return static_cast<long>(V->numberValue());
}

bool readBoolParam(const Request &Req, const char *Name, bool Fallback) {
  const JsonValue *V = Req.Params.get(Name);
  if (!V)
    return Fallback;
  if (!V->isBool())
    badRequest(formatString("\"%s\" must be a boolean", Name));
  return V->boolValue();
}

} // namespace

Service::Service(Options Opts) : Opts(std::move(Opts)) {}

Service::~Service() = default;

bool Service::start(std::string &Error) {
  if (Opts.SeedFile.empty()) {
    Seed = spec::SeedSpec::parse(spec::paperSeedSpecText());
  } else {
    spec::IOResult<spec::SeedSpec> Loaded =
        spec::loadSeedSpec(Opts.SeedFile);
    for (const std::string &W : Loaded.Warnings)
      std::fprintf(stderr, "seed: %s\n", W.c_str());
    if (!Loaded) {
      Error = Loaded.Error;
      return false;
    }
    Seed = std::move(Loaded.Value);
  }

  if (Opts.CorpusDirs.empty()) {
    Error = "no corpus directories to serve";
    return false;
  }
  if (!loadCorpus(Corpus, Error))
    return false;

  Session = makeSession();
  if (!Opts.CacheDir.empty() && !Session->graphCache()->valid()) {
    Error = Session->graphCache()->error();
    return false;
  }
  if (!Opts.ShardCacheDir.empty() && !Session->shardCache()->valid()) {
    Error = Session->shardCache()->error();
    return false;
  }
  Session->addProjects(Corpus);
  try {
    Session->generateConstraints(Seed);
    Warm = Session->solve();
  } catch (const std::exception &E) {
    Error = E.what();
    return false;
  }
  Started = true;
  return true;
}

bool Service::loadCorpus(std::vector<pysem::Project> &Out,
                         std::string &Error) {
  std::vector<std::vector<std::string>> LoadErrors;
  std::vector<std::optional<pysem::Project>> Loaded =
      pysem::loadProjectsFromDirs(Opts.CorpusDirs, pysem::LoadOptions(),
                                  Opts.Jobs, &LoadErrors);
  for (size_t I = 0; I < Loaded.size(); ++I) {
    for (const std::string &E : LoadErrors[I])
      std::fprintf(stderr, "warning: %s\n", E.c_str());
    if (!Loaded[I]) {
      Error = Opts.CorpusDirs[I] + " is not a directory";
      return false;
    }
    Out.push_back(std::move(*Loaded[I]));
  }
  return true;
}

std::unique_ptr<infer::Session> Service::makeSession() {
  infer::PipelineOptions P;
  P.Solve.MaxIterations = Opts.Iterations;
  P.Gen.RepCutoff = Opts.RepCutoff;
  P.Jobs = Opts.Jobs;
  P.Solve.Backend = Opts.Backend;
  P.Strict = Opts.Strict;
  // Session::armDeadline is one-shot, which is wrong for a daemon: the
  // run deadline stays disarmed forever and per-request budgets flow
  // through SolveOptions (learn) or per-stage polls (query/taint).
  P.DeadlineSeconds = 0.0;
  // Every session solves against the service's cumulative feedback set;
  // while it is empty applyFeedback never runs and the solve is
  // byte-identical to the passive path.
  P.Feedback = &Feedback;
  auto S = std::make_unique<infer::Session>(P);
  if (!Opts.CacheDir.empty())
    S->enableCache(Opts.CacheDir);
  if (!Opts.ShardCacheDir.empty())
    S->enableShardCache(Opts.ShardCacheDir);
  return S;
}

bool Service::tryAdmit() {
  size_t Prev = Admitted.fetch_add(1, std::memory_order_acq_rel);
  if (Prev >= Opts.MaxInFlight) {
    Admitted.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void Service::release() {
  Admitted.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Service::serve(const std::string &Line) {
  if (!tryAdmit())
    return overloadedResponse(Line);
  std::string Response = handle(Line);
  release();
  return Response;
}

std::string Service::overloadedResponse(const std::string &Line) const {
  // Best-effort id salvage; parseRequest fills Out.Id whenever the line
  // parses as an object, even when validation fails afterwards.
  Request Req;
  RequestError Err;
  (void)parseRequest(Line, Opts.MaxRequestBytes, Req, Err);
  return renderErrorResponse(
      Req.Id, ErrorCode::Overloaded,
      formatString("%zu request(s) already in flight; retry later",
                   Opts.MaxInFlight));
}

std::string Service::handle(const std::string &Line) {
  Handled.fetch_add(1, std::memory_order_relaxed);
  Request Req;
  RequestError Err;
  if (!parseRequest(Line, Opts.MaxRequestBytes, Req, Err)) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, Err.Code, Err.Message);
  }
  if (shuttingDown()) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::ShuttingDown,
                               "service is draining");
  }
  try {
    if (!Started)
      throw OpError(ErrorCode::Internal, "service not started");
    Deadline D;
    double Budget = Opts.RequestDeadlineSeconds;
    if (const JsonValue *DS = Req.Params.get("deadline_s")) {
      if (!DS->isNumber() || DS->numberValue() < 0.0)
        badRequest("\"deadline_s\" must be a non-negative number");
      Budget = DS->numberValue();
    }
    D.arm(Budget);
    return renderOkResponse(Req.Id, dispatch(Req, D));
  } catch (const OpError &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, E.Code, E.what());
  } catch (const DeadlineError &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Deadline, E.what());
  } catch (const std::exception &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Internal, E.what());
  } catch (...) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Internal,
                               "unknown exception");
  }
}

std::string Service::dispatch(const Request &Req, Deadline &D) {
  if (Req.Op == "status")
    return opStatus();
  if (Req.Op == "query")
    return opQuery(Req, D);
  if (Req.Op == "learn")
    return opLearn(Req, D);
  if (Req.Op == "feedback")
    return opFeedback(Req, D);
  if (Req.Op == "taint")
    return opTaint(Req, D);
  if (Req.Op == "shutdown") {
    ShuttingDown.store(true, std::memory_order_release);
    return "{\"stopping\":true}";
  }
  throw OpError(ErrorCode::UnknownOp,
                formatString("unknown op \"%s\" (expected status, query, "
                             "learn, feedback, taint, or shutdown)",
                             Req.Op.c_str()));
}

std::string Service::opStatus() {
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  metrics::Registry &Reg = metrics::Registry::global();
  return formatString(
      "{\"protocol\":%d,"
      "\"corpus\":{\"projects\":%zu,\"files\":%zu,\"events\":%zu,"
      "\"edges\":%zu},"
      "\"system\":{\"candidates\":%zu,\"constraints\":%zu},"
      "\"spec\":{\"size\":%zu,\"threshold\":%s},"
      "\"solve\":{\"iterations\":%d,\"converged\":%s},"
      "\"health\":{\"status\":\"%s\",\"quarantined\":%zu},"
      "\"cache\":{\"enabled\":%s,\"hits\":%llu,\"misses\":%llu,"
      "\"stores\":%llu},"
      "\"requests\":{\"handled\":%llu,\"failed\":%llu,\"active\":%zu},"
      "\"metrics\":{\"parse_files\":%llu,\"taint_analyses\":%llu}}",
      ProtocolVersion, Corpus.size(), Warm.NumFiles,
      Warm.Graph.numEvents(), Warm.Graph.numEdges(),
      Warm.System.NumCandidates, Warm.System.Constraints.size(),
      Warm.Learned.size(),
      renderJsonNumber(Opts.Threshold).c_str(), Warm.Solve.Iterations,
      Warm.Solve.Converged ? "true" : "false",
      infer::runStatusName(Warm.Health.status()),
      Warm.Health.Quarantined.size(),
      Warm.UsedCache ? "true" : "false",
      static_cast<unsigned long long>(Warm.Cache.Hits),
      static_cast<unsigned long long>(Warm.Cache.Misses),
      static_cast<unsigned long long>(Warm.Cache.Stores),
      static_cast<unsigned long long>(
          Handled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Failed.load(std::memory_order_relaxed)),
      Admitted.load(std::memory_order_relaxed),
      static_cast<unsigned long long>(Reg.counter("parse.files").value()),
      static_cast<unsigned long long>(
          Reg.counter("taint.analyses").value()));
}

std::string Service::opQuery(const Request &Req, Deadline &D) {
  const JsonValue *Rep = Req.Params.get("rep");
  if (!Rep || !Rep->isString() || Rep->stringValue().empty())
    badRequest("\"rep\" must be a non-empty string");
  std::string RoleName = "source";
  if (const JsonValue *R = Req.Params.get("role")) {
    if (!R->isString())
      badRequest("\"role\" must be a string");
    RoleName = R->stringValue();
  }
  propgraph::Role Role;
  if (!roleFromName(RoleName, Role))
    badRequest("\"role\" must be source|sanitizer|sink");

  checkDeadline(D, "query");
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  QueryResult Q =
      queryRep(Warm.System, Warm.Reps, Rep->stringValue(), Role,
               Warm.Solve.X);
  return renderQueryJson(Q);
}

std::string Service::opLearn(const Request &Req, Deadline &D) {
  long Iters =
      readIntParam(Req, "iters", Opts.Iterations, 1, 10'000'000);
  bool Reload = readBoolParam(Req, "reload", false);
  // A reload defaults to a warm start — the point of an incremental
  // re-learn is converging quickly from the served spec; a plain re-solve
  // stays cold by default so differential clients get the exact
  // reference trajectory.
  bool WarmStart = readBoolParam(Req, "warm", Reload);
  // Optional per-request evaluator override; the daemon default is
  // restored once the solve finishes (or throws).
  solver::SolverBackend Backend = Opts.Backend;
  if (const JsonValue *B = Req.Params.get("backend")) {
    if (!B->isString() ||
        !solver::parseSolverBackend(B->stringValue(), Backend))
      badRequest(
          "\"backend\" must be one of legacy|compiled|simd|simd-f32");
  }

  checkDeadline(D, Reload ? "reload" : "solve");
  std::unique_lock<std::shared_mutex> Lock(WarmMutex);
  infer::PipelineResult R;
  // The warm-start spec must outlive the solve; options().WarmStart is a
  // borrowed pointer.
  spec::LearnedSpec WarmCopy;
  if (Reload) {
    // Re-read the corpus into a *fresh* session: the served state stays
    // untouched (and keeps serving reads after we release the lock on a
    // throw) until the new solve has fully succeeded. With the graph and
    // shard caches enabled, unchanged projects replay their cached graph
    // and constraint shard — only the delta re-parses and re-extracts.
    std::vector<pysem::Project> NewCorpus;
    std::string Error;
    if (!loadCorpus(NewCorpus, Error))
      throw OpError(ErrorCode::Internal, Error);
    std::unique_ptr<infer::Session> NewSession = makeSession();
    NewSession->addProjects(NewCorpus);
    solver::SolveOptions &SO = NewSession->options().Solve;
    SO.MaxIterations = static_cast<int>(Iters);
    SO.Backend = Backend;
    if (D.armed())
      SO.BudgetSeconds = D.remainingSeconds();
    SO.ShouldStop = [&D]() { return D.expired(); };
    if (WarmStart) {
      WarmCopy = Warm.Learned;
      NewSession->options().WarmStart = &WarmCopy;
    }
    NewSession->generateConstraints(Seed);
    R = NewSession->solve();
    // Clear the per-request knobs before the session becomes the warm
    // one — D and WarmCopy die with this request.
    SO.MaxIterations = Opts.Iterations;
    SO.Backend = Opts.Backend;
    SO.BudgetSeconds = 0.0;
    SO.ShouldStop = nullptr;
    NewSession->options().WarmStart = nullptr;
    // Moving the vector moves its buffer, not its elements, so the
    // Project pointers the new session borrowed stay valid.
    Corpus = std::move(NewCorpus);
    Session = std::move(NewSession);
  } else {
    solver::SolveOptions &SO = Session->options().Solve;
    SO.MaxIterations = static_cast<int>(Iters);
    SO.Backend = Backend;
    if (D.armed())
      SO.BudgetSeconds = D.remainingSeconds();
    SO.ShouldStop = [&D]() { return D.expired(); };
    if (WarmStart) {
      WarmCopy = Warm.Learned;
      Session->options().WarmStart = &WarmCopy;
    }
    auto Restore = [&]() {
      SO.MaxIterations = Opts.Iterations;
      SO.Backend = Opts.Backend;
      SO.BudgetSeconds = 0.0;
      SO.ShouldStop = nullptr;
      Session->options().WarmStart = nullptr;
    };
    try {
      // The graph and constraint system are warm (GraphReady/SystemReady
      // from start()); solve() alone re-optimizes — no re-parse, no
      // re-gen.
      R = Session->solve();
    } catch (...) {
      Restore();
      throw;
    }
    Restore();
  }
  Warm = std::move(R);
  return formatString(
      "{\"iterations\":%d,\"converged\":%s,\"constraints\":%zu,"
      "\"candidates\":%zu,\"spec_size\":%zu,\"warm_started\":%s,"
      "\"backend\":\"%s\",\"simd_active\":%s,"
      "\"incremental\":{\"shards_hit\":%llu,\"shards_rebuilt\":%llu,"
      "\"warm_start\":%s},"
      "\"health\":\"%s\"}",
      Warm.Solve.Iterations, Warm.Solve.Converged ? "true" : "false",
      Warm.System.Constraints.size(), Warm.System.NumCandidates,
      Warm.Learned.size(), WarmStart ? "true" : "false",
      solver::solverBackendName(Warm.Backend),
      Warm.SimdActive ? "true" : "false",
      static_cast<unsigned long long>(Warm.Incr.ShardsHit),
      static_cast<unsigned long long>(Warm.Incr.ShardsRebuilt),
      Warm.Incr.WarmStarted ? "true" : "false",
      infer::runStatusName(Warm.Health.status()));
}

std::string Service::opFeedback(const Request &Req, Deadline &D) {
  long Iters =
      readIntParam(Req, "iters", Opts.Iterations, 1, 10'000'000);
  // Feedback exists to nudge the served spec, so it warm-starts by
  // default; "warm": false forces the cold reference trajectory.
  bool WarmStart = readBoolParam(Req, "warm", true);
  constraints::FeedbackOptions FO;
  if (const JsonValue *W = Req.Params.get("weight")) {
    if (!W->isNumber() || W->numberValue() <= 0.0)
      badRequest("\"weight\" must be a positive number");
    FO.AcceptWeight = FO.RejectWeight = W->numberValue();
  }
  if (const JsonValue *Dk = Req.Params.get("decay")) {
    if (!Dk->isNumber() || Dk->numberValue() < 0.0 ||
        Dk->numberValue() > 1.0)
      badRequest("\"decay\" must be a number in [0, 1]");
    FO.SimilarityDecay = Dk->numberValue();
  }
  constraints::FeedbackSet Delta;
  std::string Error;
  size_t Accepted = 0, Rejected = 0;
  if (!feedbackFromJson(Req.Params, Delta, Error, &Accepted, &Rejected))
    badRequest(Error);

  checkDeadline(D, "feedback solve");
  std::unique_lock<std::shared_mutex> Lock(WarmMutex);
  // Merge the delta into the cumulative set; a repeated pair keeps the
  // newest verdict. The session's options already point at Feedback, so
  // the re-solve below (and every later learn) sees the merged set.
  for (const constraints::FeedbackEntry &E : Delta.entries()) {
    if (E.Accepted)
      Feedback.accept(E.Rep, E.R);
    else
      Feedback.reject(E.Rep, E.R);
  }
  infer::PipelineOptions &P = Session->options();
  constraints::FeedbackOptions SavedFO = P.FeedbackOpts;
  P.FeedbackOpts = FO;
  solver::SolveOptions &SO = P.Solve;
  SO.MaxIterations = static_cast<int>(Iters);
  if (D.armed())
    SO.BudgetSeconds = D.remainingSeconds();
  SO.ShouldStop = [&D]() { return D.expired(); };
  // The warm-start spec must outlive the solve; options().WarmStart is a
  // borrowed pointer.
  spec::LearnedSpec WarmCopy;
  if (WarmStart) {
    WarmCopy = Warm.Learned;
    P.WarmStart = &WarmCopy;
  }
  auto Restore = [&]() {
    P.FeedbackOpts = SavedFO;
    SO.MaxIterations = Opts.Iterations;
    SO.BudgetSeconds = 0.0;
    SO.ShouldStop = nullptr;
    P.WarmStart = nullptr;
  };
  infer::PipelineResult R;
  try {
    R = Session->solve();
  } catch (...) {
    Restore();
    throw;
  }
  Restore();
  Warm = std::move(R);
  return formatString(
      "{\"accepted\":%zu,\"rejected\":%zu,\"total_feedback\":%zu,"
      "\"matched\":%zu,\"unmatched\":%zu,\"evidence_rows\":%zu,"
      "\"propagated_rows\":%zu,"
      "\"iterations\":%d,\"converged\":%s,\"spec_size\":%zu,"
      "\"warm_started\":%s}",
      Accepted, Rejected, Feedback.size(), Warm.Feedback.Matched,
      Warm.Feedback.Unmatched, Warm.Feedback.EvidenceRows,
      Warm.Feedback.PropagatedRows, Warm.Solve.Iterations,
      Warm.Solve.Converged ? "true" : "false", Warm.Learned.size(),
      WarmStart ? "true" : "false");
}

std::string Service::opTaint(const Request &Req, Deadline &D) {
  const JsonValue *Files = Req.Params.get("files");
  const JsonValue *Path = Req.Params.get("path");
  if ((Files != nullptr) == (Path != nullptr))
    badRequest("taint needs exactly one of \"files\" (object of "
               "name -> source) or \"path\" (directory)");
  double Threshold = Opts.Threshold;
  if (const JsonValue *T = Req.Params.get("threshold")) {
    if (!T->isNumber())
      badRequest("\"threshold\" must be a number");
    Threshold = T->numberValue();
  }
  bool Dedup = readBoolParam(Req, "dedup", true);

  pysem::Project Payload("payload");
  if (Files) {
    if (!Files->isObject() || Files->objectValue().empty())
      badRequest("\"files\" must be a non-empty object of "
                 "name -> source");
    // std::map iteration is sorted by name, so the payload graph — and
    // therefore the report order — is deterministic.
    for (const auto &[Name, Source] : Files->objectValue()) {
      if (!Source.isString())
        badRequest(
            formatString("\"files\" entry \"%s\" must be a string",
                         Name.c_str()));
      Payload.addModule(Name, Source.stringValue());
    }
  } else {
    if (!Path->isString() || Path->stringValue().empty())
      badRequest("\"path\" must be a non-empty string");
    std::vector<std::string> LoadErrors;
    std::optional<pysem::Project> Loaded = pysem::loadProjectFromDir(
        Path->stringValue(), pysem::LoadOptions(), &LoadErrors);
    if (!Loaded)
      badRequest(Path->stringValue() + " is not a directory");
    Payload = std::move(*Loaded);
  }

  checkDeadline(D, "graph build");
  propgraph::PropagationGraph Graph =
      propgraph::buildProjectGraph(Payload);

  checkDeadline(D, "taint analysis");
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  taint::RoleResolver Roles(&Seed.Spec, &Warm.Learned, Threshold);
  taint::TaintAnalyzer Analyzer(Graph);
  std::vector<taint::Violation> Reports = Analyzer.analyze(Roles);
  if (Dedup)
    Reports = taint::dedupByRepPair(Graph, Reports);
  std::vector<double> Confidence = taint::rankViolations(
      Graph, Reports, &Seed.Spec, &Warm.Learned, Threshold);
  return taint::reportsToJson(Graph, Reports, &Confidence);
}
