//===- tests/crossmodule_test.cpp - Project-level flow linking ------------===//
//
// Tests for BuildOptions::CrossModuleFlows: calls into functions defined
// in other modules of the same project get argument-to-parameter and
// return-to-call edges, so flows through project-local helper modules
// (`from utils import scrub`) become visible. The paper's default — all
// imported bodies unknown (§5.2) — remains the default here.
//
//===----------------------------------------------------------------------===//

#include "propgraph/GraphBuilder.h"
#include "spec/SeedSpec.h"
#include "taint/TaintAnalyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct ProjectFixture {
  pysem::Project Proj{"pkg"};
  PropagationGraph Graph;

  void add(const std::string &Path, std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule(Path, Source);
    EXPECT_TRUE(M.Errors.empty())
        << (M.Errors.empty() ? "" : M.Errors.front().Message);
  }

  void build(bool CrossModule) {
    BuildOptions Opts;
    Opts.CrossModuleFlows = CrossModule;
    Graph = buildProjectGraph(Proj, Opts);
  }

  bool flowsTo(const std::string &From, const std::string &To) const {
    EventId F = InvalidEvent, T = InvalidEvent;
    for (const Event &E : Graph.events()) {
      if (E.primaryRep() == From && F == InvalidEvent)
        F = E.Id;
      if (E.primaryRep() == To && T == InvalidEvent)
        T = E.Id;
    }
    if (F == InvalidEvent || T == InvalidEvent)
      return false;
    auto R = Graph.reachableFrom(F);
    return std::find(R.begin(), R.end(), T) != R.end();
  }
};

void addHelperProject(ProjectFixture &F) {
  F.add("pkg/utils.py", "import flask\n"
                        "def scrub(value):\n"
                        "    return flask.escape(value)\n");
  F.add("pkg/app.py", "from utils import scrub\n"
                      "from flask import request\n"
                      "import flask\n"
                      "def view():\n"
                      "    q = request.args.get('q')\n"
                      "    flask.make_response(scrub(q))\n");
}

TEST(CrossModuleTest, DefaultTreatsImportsAsUnknown) {
  ProjectFixture F;
  addHelperProject(F);
  F.build(/*CrossModule=*/false);
  // The argument still flows through the opaque call into the sink...
  EXPECT_TRUE(
      F.flowsTo("flask.request.args.get()", "flask.make_response()"));
  // ...but never reaches the helper's body.
  EXPECT_FALSE(F.flowsTo("flask.request.args.get()", "flask.escape()"));
}

TEST(CrossModuleTest, LinkedFlowReachesHelperBody) {
  ProjectFixture F;
  addHelperProject(F);
  F.build(/*CrossModule=*/true);
  EXPECT_TRUE(F.flowsTo("flask.request.args.get()", "flask.escape()"));
  EXPECT_TRUE(F.flowsTo("flask.escape()", "flask.make_response()"));
}

TEST(CrossModuleTest, SeededSanitizerBlocksLinkedFlow) {
  // With linking, the seed's flask.escape() suppresses the report without
  // the learner ever seeing `utils.scrub`.
  spec::SeedSpec Seed = spec::SeedSpec::parse(
      "o: flask.request.args.get()\n"
      "a: flask.escape()\n"
      "i: flask.make_response()\n");

  ProjectFixture Unlinked;
  addHelperProject(Unlinked);
  Unlinked.build(false);
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  EXPECT_EQ(taint::TaintAnalyzer(Unlinked.Graph).analyze(Roles).size(), 1u)
      << "opaque helper: false positive (paper's 'missing sanitizer')";

  ProjectFixture LinkedF;
  addHelperProject(LinkedF);
  LinkedF.build(true);
  EXPECT_TRUE(taint::TaintAnalyzer(LinkedF.Graph).analyze(Roles).empty())
      << "linked helper: the sanitized path is visible";
}

TEST(CrossModuleTest, AbsoluteQualifiedImportResolves) {
  ProjectFixture F;
  F.add("pkg/helpers.py", "import db\n"
                          "def run(q):\n"
                          "    db.exec(q)\n");
  F.add("pkg/app.py", "import helpers\nimport web\n"
                      "helpers.run(web.read())\n");
  F.build(true);
  EXPECT_TRUE(F.flowsTo("web.read()", "db.exec()"));
}

TEST(CrossModuleTest, KeywordArgumentsLink) {
  ProjectFixture F;
  F.add("pkg/helpers.py", "import db\n"
                          "def run(query, timeout):\n"
                          "    db.exec(query)\n");
  F.add("pkg/app.py", "import helpers\nimport web\n"
                      "helpers.run(timeout=3, query=web.read())\n");
  F.build(true);
  EXPECT_TRUE(F.flowsTo("web.read()", "db.exec()"));
}

TEST(CrossModuleTest, ReturnValueFlowsBack) {
  ProjectFixture F;
  F.add("pkg/helpers.py", "import web\n"
                          "def fetch():\n"
                          "    return web.read()\n");
  F.add("pkg/app.py", "import helpers\nimport db\n"
                      "db.exec(helpers.fetch())\n");
  F.build(true);
  EXPECT_TRUE(F.flowsTo("web.read()", "db.exec()"));
}

TEST(CrossModuleTest, UnknownTargetsStayOpaque) {
  ProjectFixture F;
  F.add("pkg/app.py", "import requests\nimport db\n"
                      "db.exec(requests.get(url))\n");
  F.build(true);
  // `requests` is not a project module; nothing to link, no crash.
  EXPECT_TRUE(F.flowsTo("requests.get()", "db.exec()"));
}

TEST(PreciseInliningTest, SeededSanitizerInLocalWrapperBlocks) {
  const char *Source = "import flask\n"
                       "from flask import request\n"
                       "def scrub(value):\n"
                       "    return flask.escape(value)\n"
                       "def view():\n"
                       "    q = request.args.get('q')\n"
                       "    flask.make_response(scrub(q))\n";
  spec::SeedSpec Seed = spec::SeedSpec::parse(
      "o: flask.request.args.get()\n"
      "a: flask.escape()\n"
      "i: flask.make_response()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);

  // Paper semantics: the wrapper call propagates its argument directly,
  // so the inner sanitizer cannot suppress the report.
  pysem::Project P1("p");
  const pysem::ModuleInfo &M1 = P1.addModule("p/app.py", Source);
  PropagationGraph G1 = buildModuleGraph(P1, M1);
  EXPECT_EQ(taint::TaintAnalyzer(G1).analyze(Roles).size(), 1u);

  // Precise inlining: flow routes only through the wrapper body.
  pysem::Project P2("p");
  const pysem::ModuleInfo &M2 = P2.addModule("p/app.py", Source);
  BuildOptions Opts;
  Opts.PreciseInlining = true;
  PropagationGraph G2 = buildModuleGraph(P2, M2, Opts);
  EXPECT_TRUE(taint::TaintAnalyzer(G2).analyze(Roles).empty());
}

TEST(PreciseInliningTest, RecursiveCallsKeepDirectEdges) {
  pysem::Project P("p");
  const pysem::ModuleInfo &M =
      P.addModule("p/app.py", "import web\nimport db\n"
                              "def f(x):\n"
                              "    db.exec(x)\n"
                              "    return f(x)\n"
                              "f(web.read())\n");
  BuildOptions Opts;
  Opts.PreciseInlining = true;
  PropagationGraph G = buildModuleGraph(P, M, Opts);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  EXPECT_GE(taint::TaintAnalyzer(G).analyze(Roles).size(), 1u)
      << "flow through the recursive wrapper must not be lost";
}

TEST(CrossModuleTest, GraphStaysAcyclicOnSimpleProjects) {
  ProjectFixture F;
  addHelperProject(F);
  F.build(true);
  EXPECT_TRUE(F.Graph.isAcyclic());
}

} // namespace
