//===- pyast/Ast.h - Python abstract syntax tree -----------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node hierarchy for the supported Python subset, an arena-style
/// AstContext that owns all nodes, and LLVM-style isa/cast/dyn_cast helpers
/// keyed on a NodeKind discriminator (no C++ RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYAST_AST_H
#define SELDON_PYAST_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace seldon {
namespace pyast {

/// Source location of a node (1-based).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;
};

/// Discriminator for every concrete AST node class.
enum class NodeKind : uint8_t {
  // Expressions.
  Name,
  NumberLit,
  StringLit,
  BoolLit,
  NoneLit,
  Attribute,
  Subscript,
  Slice,
  Call,
  Binary,
  Unary,
  BoolOp,
  Compare,
  List,
  Tuple,
  Set,
  Dict,
  Lambda,
  Conditional,
  Starred,
  Comprehension,
  JoinedStr,
  Yield,

  // Statements.
  ExprStmt,
  Assign,
  AugAssign,
  AnnAssign,
  FunctionDef,
  ClassDef,
  Return,
  If,
  While,
  For,
  Import,
  ImportFrom,
  Pass,
  Break,
  Continue,
  With,
  Try,
  Raise,
  Global,
  Delete,
  Assert,

  // Top level.
  Module,
};

/// Base class of every AST node. Nodes are created through AstContext and
/// referenced by raw pointer; the context owns their lifetime.
class Node {
public:
  Node(const Node &) = delete;
  Node &operator=(const Node &) = delete;
  virtual ~Node();

  NodeKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Node(NodeKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  NodeKind Kind;
  SourceLoc Loc;
};

/// LLVM-style type queries keyed on NodeKind.
template <typename T> bool isa(const Node *N) {
  assert(N && "isa<> on null node");
  return T::classof(N);
}

template <typename T> T *cast(Node *N) {
  assert(isa<T>(N) && "cast<> to incompatible node kind");
  return static_cast<T *>(N);
}

template <typename T> const T *cast(const Node *N) {
  assert(isa<T>(N) && "cast<> to incompatible node kind");
  return static_cast<const T *>(N);
}

template <typename T> T *dyn_cast(Node *N) {
  return N && T::classof(N) ? static_cast<T *>(N) : nullptr;
}

template <typename T> const T *dyn_cast(const Node *N) {
  return N && T::classof(N) ? static_cast<const T *>(N) : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions.
class Expr : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::Name && N->kind() <= NodeKind::Yield;
  }

protected:
  using Node::Node;
};

/// An identifier reference, e.g. `filename`.
class NameExpr : public Expr {
public:
  NameExpr(SourceLoc Loc, std::string Id)
      : Expr(NodeKind::Name, Loc), Id(std::move(Id)) {}
  std::string Id;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Name; }
};

/// A numeric literal; the spelling is kept verbatim.
class NumberExpr : public Expr {
public:
  NumberExpr(SourceLoc Loc, std::string Spelling)
      : Expr(NodeKind::NumberLit, Loc), Spelling(std::move(Spelling)) {}
  std::string Spelling;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::NumberLit;
  }
};

/// A string literal (escape sequences already decoded).
class StringExpr : public Expr {
public:
  StringExpr(SourceLoc Loc, std::string Value)
      : Expr(NodeKind::StringLit, Loc), Value(std::move(Value)) {}
  std::string Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::StringLit;
  }
};

/// `True` or `False`.
class BoolExpr : public Expr {
public:
  BoolExpr(SourceLoc Loc, bool Value)
      : Expr(NodeKind::BoolLit, Loc), Value(Value) {}
  bool Value;
  static bool classof(const Node *N) { return N->kind() == NodeKind::BoolLit; }
};

/// `None`.
class NoneExpr : public Expr {
public:
  explicit NoneExpr(SourceLoc Loc) : Expr(NodeKind::NoneLit, Loc) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::NoneLit; }
};

/// Attribute access, e.g. `request.files`.
class AttributeExpr : public Expr {
public:
  AttributeExpr(SourceLoc Loc, Expr *Value, std::string Attr)
      : Expr(NodeKind::Attribute, Loc), Value(Value), Attr(std::move(Attr)) {}
  Expr *Value;
  std::string Attr;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Attribute;
  }
};

/// Subscript access, e.g. `request.files['f']` or `d[k]`.
class SubscriptExpr : public Expr {
public:
  SubscriptExpr(SourceLoc Loc, Expr *Value, Expr *Index)
      : Expr(NodeKind::Subscript, Loc), Value(Value), Index(Index) {}
  Expr *Value;
  Expr *Index;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Subscript;
  }
};

/// A slice `lo:hi:step` appearing as a subscript index; bounds may be null.
class SliceExpr : public Expr {
public:
  SliceExpr(SourceLoc Loc, Expr *Lower, Expr *Upper, Expr *Step)
      : Expr(NodeKind::Slice, Loc), Lower(Lower), Upper(Upper), Step(Step) {}
  Expr *Lower;
  Expr *Upper;
  Expr *Step;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Slice; }
};

/// A keyword argument `name=value` at a call site. `Name` is empty for a
/// `**kwargs` expansion.
struct KeywordArg {
  std::string Name;
  Expr *Value = nullptr;
};

/// A function or method call.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, Expr *Callee, std::vector<Expr *> Args,
           std::vector<KeywordArg> Keywords)
      : Expr(NodeKind::Call, Loc), Callee(Callee), Args(std::move(Args)),
        Keywords(std::move(Keywords)) {}
  Expr *Callee;
  std::vector<Expr *> Args;
  std::vector<KeywordArg> Keywords;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Call; }
};

/// Binary arithmetic/bitwise operators.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  MatMul,
  Div,
  FloorDiv,
  Mod,
  Pow,
  LShift,
  RShift,
  BitAnd,
  BitOr,
  BitXor,
};

/// Returns a printable spelling such as "+" for \p Op.
const char *binaryOpSpelling(BinaryOp Op);

/// A binary operation, e.g. `'<div>' + msg`.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Binary; }
};

/// Unary operators.
enum class UnaryOp : uint8_t { Neg, Pos, Invert, Not };

/// A unary operation, e.g. `not ok` or `-x`.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, Expr *Operand)
      : Expr(NodeKind::Unary, Loc), Op(Op), Operand(Operand) {}
  UnaryOp Op;
  Expr *Operand;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Unary; }
};

/// `and` / `or` over two or more operands.
class BoolOpExpr : public Expr {
public:
  BoolOpExpr(SourceLoc Loc, bool IsAnd, std::vector<Expr *> Operands)
      : Expr(NodeKind::BoolOp, Loc), IsAnd(IsAnd),
        Operands(std::move(Operands)) {}
  bool IsAnd;
  std::vector<Expr *> Operands;
  static bool classof(const Node *N) { return N->kind() == NodeKind::BoolOp; }
};

/// Comparison operators (including identity and membership tests).
enum class CompareOp : uint8_t {
  Eq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Is,
  IsNot,
  In,
  NotIn,
};

/// A (possibly chained) comparison, e.g. `0 <= i < n`.
class CompareExpr : public Expr {
public:
  CompareExpr(SourceLoc Loc, Expr *First, std::vector<CompareOp> Ops,
              std::vector<Expr *> Comparators)
      : Expr(NodeKind::Compare, Loc), First(First), Ops(std::move(Ops)),
        Comparators(std::move(Comparators)) {}
  Expr *First;
  std::vector<CompareOp> Ops;
  std::vector<Expr *> Comparators;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Compare; }
};

/// A list display `[a, b, c]`.
class ListExpr : public Expr {
public:
  ListExpr(SourceLoc Loc, std::vector<Expr *> Elements)
      : Expr(NodeKind::List, Loc), Elements(std::move(Elements)) {}
  std::vector<Expr *> Elements;
  static bool classof(const Node *N) { return N->kind() == NodeKind::List; }
};

/// A tuple display `(a, b)` or bare `a, b`.
class TupleExpr : public Expr {
public:
  TupleExpr(SourceLoc Loc, std::vector<Expr *> Elements)
      : Expr(NodeKind::Tuple, Loc), Elements(std::move(Elements)) {}
  std::vector<Expr *> Elements;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Tuple; }
};

/// A set display `{a, b}`.
class SetExpr : public Expr {
public:
  SetExpr(SourceLoc Loc, std::vector<Expr *> Elements)
      : Expr(NodeKind::Set, Loc), Elements(std::move(Elements)) {}
  std::vector<Expr *> Elements;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Set; }
};

/// A dict display `{k: v, ...}`. Keys and Values are parallel vectors; a
/// null key denotes a `**mapping` expansion.
class DictExpr : public Expr {
public:
  DictExpr(SourceLoc Loc, std::vector<Expr *> Keys, std::vector<Expr *> Values)
      : Expr(NodeKind::Dict, Loc), Keys(std::move(Keys)),
        Values(std::move(Values)) {}
  std::vector<Expr *> Keys;
  std::vector<Expr *> Values;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Dict; }
};

/// A formal parameter (of a def or a lambda).
struct Param {
  std::string Name;
  Expr *Default = nullptr;    ///< May be null.
  Expr *Annotation = nullptr; ///< May be null; ignored by the analysis.
  bool IsVarArgs = false;     ///< `*args`
  bool IsKwArgs = false;      ///< `**kwargs`
  SourceLoc Loc;
};

/// A lambda expression.
class LambdaExpr : public Expr {
public:
  LambdaExpr(SourceLoc Loc, std::vector<Param> Params, Expr *Body)
      : Expr(NodeKind::Lambda, Loc), Params(std::move(Params)), Body(Body) {}
  std::vector<Param> Params;
  Expr *Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Lambda; }
};

/// A conditional expression `a if cond else b`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, Expr *Body, Expr *Cond, Expr *OrElse)
      : Expr(NodeKind::Conditional, Loc), Body(Body), Cond(Cond),
        OrElse(OrElse) {}
  Expr *Body;
  Expr *Cond;
  Expr *OrElse;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Conditional;
  }
};

/// A starred expression `*x` in a call or assignment target.
class StarredExpr : public Expr {
public:
  StarredExpr(SourceLoc Loc, Expr *Value)
      : Expr(NodeKind::Starred, Loc), Value(Value) {}
  Expr *Value;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Starred; }
};

/// Flavour of a comprehension display.
enum class ComprehensionKind : uint8_t { List, Set, Dict, Generator };

/// A single-`for` comprehension, e.g. `[f(x) for x in xs if p(x)]`.
/// For dict comprehensions, \c Element is the value and \c KeyElement the key.
class ComprehensionExpr : public Expr {
public:
  ComprehensionExpr(SourceLoc Loc, ComprehensionKind CompKind, Expr *Element,
                    Expr *KeyElement, Expr *Target, Expr *Iter, Expr *Cond)
      : Expr(NodeKind::Comprehension, Loc), CompKind(CompKind),
        Element(Element), KeyElement(KeyElement), Target(Target), Iter(Iter),
        Cond(Cond) {}
  ComprehensionKind CompKind;
  Expr *Element;
  Expr *KeyElement; ///< Null unless CompKind == Dict.
  Expr *Target;
  Expr *Iter;
  Expr *Cond; ///< May be null.
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Comprehension;
  }
};

/// An f-string: only the `{...}` interpolation expressions are kept (the
/// literal text fragments carry no taint). `f"hi {name}!"` yields one
/// interpolation, `name`.
class JoinedStrExpr : public Expr {
public:
  JoinedStrExpr(SourceLoc Loc, std::string Text,
                std::vector<Expr *> Interpolations)
      : Expr(NodeKind::JoinedStr, Loc), Text(std::move(Text)),
        Interpolations(std::move(Interpolations)) {}
  /// The raw literal text (escapes decoded, interpolations verbatim).
  std::string Text;
  std::vector<Expr *> Interpolations;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::JoinedStr;
  }
};

/// `yield x` (treated as an expression; generators are not modeled further).
class YieldExpr : public Expr {
public:
  YieldExpr(SourceLoc Loc, Expr *Value)
      : Expr(NodeKind::Yield, Loc), Value(Value) {}
  Expr *Value; ///< May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Yield; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= NodeKind::ExprStmt && N->kind() <= NodeKind::Assert;
  }

protected:
  using Node::Node;
};

/// An expression evaluated for its side effects (e.g. a bare call).
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, Expr *Value)
      : Stmt(NodeKind::ExprStmt, Loc), Value(Value) {}
  Expr *Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ExprStmt;
  }
};

/// `a = b = value` — one value, one or more targets.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, std::vector<Expr *> Targets, Expr *Value)
      : Stmt(NodeKind::Assign, Loc), Targets(std::move(Targets)),
        Value(Value) {}
  std::vector<Expr *> Targets;
  Expr *Value;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Assign; }
};

/// `target op= value`.
class AugAssignStmt : public Stmt {
public:
  AugAssignStmt(SourceLoc Loc, Expr *Target, BinaryOp Op, Expr *Value)
      : Stmt(NodeKind::AugAssign, Loc), Target(Target), Op(Op), Value(Value) {}
  Expr *Target;
  BinaryOp Op;
  Expr *Value;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::AugAssign;
  }
};

/// `target: annotation = value` (value may be absent).
class AnnAssignStmt : public Stmt {
public:
  AnnAssignStmt(SourceLoc Loc, Expr *Target, Expr *Annotation, Expr *Value)
      : Stmt(NodeKind::AnnAssign, Loc), Target(Target), Annotation(Annotation),
        Value(Value) {}
  Expr *Target;
  Expr *Annotation;
  Expr *Value; ///< May be null.
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::AnnAssign;
  }
};

/// A function (or method) definition.
class FunctionDefStmt : public Stmt {
public:
  FunctionDefStmt(SourceLoc Loc, std::string Name, std::vector<Param> Params,
                  std::vector<Stmt *> Body, std::vector<Expr *> Decorators,
                  Expr *ReturnAnnotation)
      : Stmt(NodeKind::FunctionDef, Loc), Name(std::move(Name)),
        Params(std::move(Params)), Body(std::move(Body)),
        Decorators(std::move(Decorators)), ReturnAnnotation(ReturnAnnotation) {}
  std::string Name;
  std::vector<Param> Params;
  std::vector<Stmt *> Body;
  std::vector<Expr *> Decorators;
  Expr *ReturnAnnotation; ///< May be null; ignored by the analysis.
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FunctionDef;
  }
};

/// A class definition.
class ClassDefStmt : public Stmt {
public:
  ClassDefStmt(SourceLoc Loc, std::string Name, std::vector<Expr *> Bases,
               std::vector<Stmt *> Body, std::vector<Expr *> Decorators)
      : Stmt(NodeKind::ClassDef, Loc), Name(std::move(Name)),
        Bases(std::move(Bases)), Body(std::move(Body)),
        Decorators(std::move(Decorators)) {}
  std::string Name;
  std::vector<Expr *> Bases;
  std::vector<Stmt *> Body;
  std::vector<Expr *> Decorators;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ClassDef;
  }
};

/// `return [value]`.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value)
      : Stmt(NodeKind::Return, Loc), Value(Value) {}
  Expr *Value; ///< May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Return; }
};

/// `if`/`elif`/`else`; elif chains are nested If statements in Else.
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond, std::vector<Stmt *> Then,
         std::vector<Stmt *> Else)
      : Stmt(NodeKind::If, Loc), Cond(Cond), Then(std::move(Then)),
        Else(std::move(Else)) {}
  Expr *Cond;
  std::vector<Stmt *> Then;
  std::vector<Stmt *> Else;
  static bool classof(const Node *N) { return N->kind() == NodeKind::If; }
};

/// `while cond:` loop. The `else` clause is folded into Body analysis-wise.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond, std::vector<Stmt *> Body,
            std::vector<Stmt *> Else)
      : Stmt(NodeKind::While, Loc), Cond(Cond), Body(std::move(Body)),
        Else(std::move(Else)) {}
  Expr *Cond;
  std::vector<Stmt *> Body;
  std::vector<Stmt *> Else;
  static bool classof(const Node *N) { return N->kind() == NodeKind::While; }
};

/// `for target in iter:` loop.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, Expr *Target, Expr *Iter, std::vector<Stmt *> Body,
          std::vector<Stmt *> Else)
      : Stmt(NodeKind::For, Loc), Target(Target), Iter(Iter),
        Body(std::move(Body)), Else(std::move(Else)) {}
  Expr *Target;
  Expr *Iter;
  std::vector<Stmt *> Body;
  std::vector<Stmt *> Else;
  static bool classof(const Node *N) { return N->kind() == NodeKind::For; }
};

/// One `module [as name]` clause of an import statement.
struct ImportAlias {
  std::string Module; ///< Dotted module path, e.g. "os.path".
  std::string AsName; ///< Empty when there is no `as` clause.
};

/// `import a.b, c as d`.
class ImportStmt : public Stmt {
public:
  ImportStmt(SourceLoc Loc, std::vector<ImportAlias> Names)
      : Stmt(NodeKind::Import, Loc), Names(std::move(Names)) {}
  std::vector<ImportAlias> Names;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Import; }
};

/// `from module import a as b, c` (`Level` counts leading dots).
class ImportFromStmt : public Stmt {
public:
  ImportFromStmt(SourceLoc Loc, std::string Module,
                 std::vector<ImportAlias> Names, unsigned Level)
      : Stmt(NodeKind::ImportFrom, Loc), Module(std::move(Module)),
        Names(std::move(Names)), Level(Level) {}
  std::string Module;
  std::vector<ImportAlias> Names; ///< Name "*" denotes a star import.
  unsigned Level;
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::ImportFrom;
  }
};

/// `pass`.
class PassStmt : public Stmt {
public:
  explicit PassStmt(SourceLoc Loc) : Stmt(NodeKind::Pass, Loc) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Pass; }
};

/// `break`.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(NodeKind::Break, Loc) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Break; }
};

/// `continue`.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(NodeKind::Continue, Loc) {}
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Continue;
  }
};

/// One `expr [as var]` item of a with statement.
struct WithItem {
  Expr *ContextExpr = nullptr;
  Expr *OptionalVars = nullptr; ///< May be null.
};

/// `with a as b, c:`.
class WithStmt : public Stmt {
public:
  WithStmt(SourceLoc Loc, std::vector<WithItem> Items, std::vector<Stmt *> Body)
      : Stmt(NodeKind::With, Loc), Items(std::move(Items)),
        Body(std::move(Body)) {}
  std::vector<WithItem> Items;
  std::vector<Stmt *> Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::With; }
};

/// One `except [type [as name]]:` handler.
struct ExceptHandler {
  Expr *Type = nullptr; ///< May be null (bare except).
  std::string Name;     ///< Empty when there is no `as` clause.
  std::vector<Stmt *> Body;
};

/// `try`/`except`/`else`/`finally`.
class TryStmt : public Stmt {
public:
  TryStmt(SourceLoc Loc, std::vector<Stmt *> Body,
          std::vector<ExceptHandler> Handlers, std::vector<Stmt *> OrElse,
          std::vector<Stmt *> Finally)
      : Stmt(NodeKind::Try, Loc), Body(std::move(Body)),
        Handlers(std::move(Handlers)), OrElse(std::move(OrElse)),
        Finally(std::move(Finally)) {}
  std::vector<Stmt *> Body;
  std::vector<ExceptHandler> Handlers;
  std::vector<Stmt *> OrElse;
  std::vector<Stmt *> Finally;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Try; }
};

/// `raise [exc [from cause]]`.
class RaiseStmt : public Stmt {
public:
  RaiseStmt(SourceLoc Loc, Expr *Exc, Expr *Cause)
      : Stmt(NodeKind::Raise, Loc), Exc(Exc), Cause(Cause) {}
  Expr *Exc;   ///< May be null.
  Expr *Cause; ///< May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Raise; }
};

/// `global a, b` (also used for `nonlocal`, which we treat identically).
class GlobalStmt : public Stmt {
public:
  GlobalStmt(SourceLoc Loc, std::vector<std::string> Names)
      : Stmt(NodeKind::Global, Loc), Names(std::move(Names)) {}
  std::vector<std::string> Names;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Global; }
};

/// `del a, b`.
class DeleteStmt : public Stmt {
public:
  DeleteStmt(SourceLoc Loc, std::vector<Expr *> Targets)
      : Stmt(NodeKind::Delete, Loc), Targets(std::move(Targets)) {}
  std::vector<Expr *> Targets;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Delete; }
};

/// `assert test[, msg]`.
class AssertStmt : public Stmt {
public:
  AssertStmt(SourceLoc Loc, Expr *Test, Expr *Msg)
      : Stmt(NodeKind::Assert, Loc), Test(Test), Msg(Msg) {}
  Expr *Test;
  Expr *Msg; ///< May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Assert; }
};

//===----------------------------------------------------------------------===//
// Module and context
//===----------------------------------------------------------------------===//

/// A parsed source file.
class ModuleNode : public Node {
public:
  ModuleNode(SourceLoc Loc, std::vector<Stmt *> Body)
      : Node(NodeKind::Module, Loc), Body(std::move(Body)) {}
  std::vector<Stmt *> Body;
  static bool classof(const Node *N) { return N->kind() == NodeKind::Module; }
};

/// Arena owner for AST nodes. All nodes created through a context stay
/// valid for the context's lifetime; node pointers never own memory.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;
  AstContext(AstContext &&) = default;
  AstContext &operator=(AstContext &&) = default;

  /// Allocates a node of type \p T.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    auto Owner = std::make_unique<T>(std::forward<Args>(CtorArgs)...);
    T *Ptr = Owner.get();
    Nodes.push_back(std::move(Owner));
    return Ptr;
  }

  size_t numNodes() const { return Nodes.size(); }

private:
  std::vector<std::unique_ptr<Node>> Nodes;
};

} // namespace pyast
} // namespace seldon

#endif // SELDON_PYAST_AST_H
