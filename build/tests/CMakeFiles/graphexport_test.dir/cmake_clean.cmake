file(REMOVE_RECURSE
  "CMakeFiles/graphexport_test.dir/graphexport_test.cpp.o"
  "CMakeFiles/graphexport_test.dir/graphexport_test.cpp.o.d"
  "graphexport_test"
  "graphexport_test.pdb"
  "graphexport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphexport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
