# Empty compiler generated dependencies file for q5_crossproject.
# This may be replaced when dependencies are built.
