//===- eval/Precision.h - Precision against ground truth ---------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Precision measurements of learned specifications against the corpus
/// ground truth: exact precision over all predictions (possible because our
/// oracle is exact), the paper's 50-sample estimate (§7.3/Tab. 5), top-K
/// precision (Tab. 4), confidence-threshold precision (Tab. 3), and the
/// cumulative score-vs-precision series of Fig. 11.
///
/// Seeded representations are excluded everywhere: the paper evaluates the
/// *inferred* specification A_U, not the hand-written A_M.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_EVAL_PRECISION_H
#define SELDON_EVAL_PRECISION_H

#include "corpus/GroundTruth.h"
#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace eval {

using corpus::GroundTruth;
using propgraph::Role;

/// A counted precision figure.
struct RolePrecision {
  size_t Predicted = 0;
  size_t Correct = 0;

  double precision() const {
    return Predicted == 0
               ? 0.0
               : static_cast<double>(Correct) / static_cast<double>(Predicted);
  }
};

/// One evaluated prediction.
struct ScoredPrediction {
  std::string Rep;
  double Score = 0.0;
  bool Correct = false;
};

/// All non-seed predictions of role \p R with score >= \p Threshold,
/// sorted by descending score.
std::vector<ScoredPrediction>
predictionsAbove(const spec::LearnedSpec &Learned, const GroundTruth &Truth,
                 const spec::SeedSpec &Seed, Role R, double Threshold);

/// Exact precision over every prediction above \p Threshold.
RolePrecision exactPrecision(const spec::LearnedSpec &Learned,
                             const GroundTruth &Truth,
                             const spec::SeedSpec &Seed, Role R,
                             double Threshold);

/// The paper's estimate: a uniform random sample of \p SampleSize
/// predictions above \p Threshold (deterministic in \p SampleSeed).
std::vector<ScoredPrediction>
sampledPredictions(const spec::LearnedSpec &Learned, const GroundTruth &Truth,
                   const spec::SeedSpec &Seed, Role R, double Threshold,
                   size_t SampleSize, uint64_t SampleSeed);

/// Precision of the top \p K predictions by score (Tab. 4).
RolePrecision topKPrecision(const spec::LearnedSpec &Learned,
                            const GroundTruth &Truth,
                            const spec::SeedSpec &Seed, Role R, size_t K);

/// Fig. 11 series: given a score-sorted sample, cumulative precision after
/// each element (entry i covers samples [0, i]).
std::vector<double>
cumulativePrecision(const std::vector<ScoredPrediction> &Sample);

/// A precision/recall/F1 figure for one role. Recall is over the
/// non-seed ground-truth representations of the role (via the memoized
/// GroundTruth::repsWithRole lists, so sweeping thresholds does not
/// re-derive the role maps).
struct RoleF1 {
  size_t Predicted = 0;
  size_t Correct = 0;
  size_t TruthReps = 0;

  double precision() const {
    return Predicted == 0
               ? 0.0
               : static_cast<double>(Correct) / static_cast<double>(Predicted);
  }
  double recall() const {
    return TruthReps == 0
               ? 0.0
               : static_cast<double>(Correct) / static_cast<double>(TruthReps);
  }
  double f1() const {
    double P = precision(), R = recall();
    return P + R == 0.0 ? 0.0 : 2.0 * P * R / (P + R);
  }
};

/// Exact precision/recall/F1 of role \p R at \p Threshold (seeded
/// representations excluded from both predictions and the truth
/// denominator).
RoleF1 exactF1(const spec::LearnedSpec &Learned, const GroundTruth &Truth,
               const spec::SeedSpec &Seed, Role R, double Threshold);

/// Mean F1 over the three roles (the bench's queries-to-target metric).
double macroF1(const spec::LearnedSpec &Learned, const GroundTruth &Truth,
               const spec::SeedSpec &Seed, double Threshold);

} // namespace eval
} // namespace seldon

#endif // SELDON_EVAL_PRECISION_H
