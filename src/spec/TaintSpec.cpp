//===- spec/TaintSpec.cpp - Taint specification data model ----------------===//

#include "spec/TaintSpec.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

void TaintSpec::add(const std::string &Rep, Role R) {
  Entries[Rep] |= maskOf(R);
}

void TaintSpec::addMask(const std::string &Rep, RoleMask Mask) {
  if (Mask == 0)
    return;
  Entries[Rep] |= Mask;
}

bool TaintSpec::has(const std::string &Rep, Role R) const {
  auto It = Entries.find(Rep);
  return It != Entries.end() && maskHas(It->second, R);
}

RoleMask TaintSpec::rolesOf(const std::string &Rep) const {
  auto It = Entries.find(Rep);
  return It == Entries.end() ? 0 : It->second;
}

size_t TaintSpec::count(Role R) const {
  size_t N = 0;
  for (const auto &[Rep, Mask] : Entries)
    N += maskHas(Mask, R);
  return N;
}

void TaintSpec::merge(const TaintSpec &Other) {
  for (const auto &[Rep, Mask] : Other.Entries)
    Entries[Rep] |= Mask;
}

std::vector<std::string> TaintSpec::sortedReps(Role R) const {
  std::vector<std::string> Out;
  for (const auto &[Rep, Mask] : Entries)
    if (maskHas(Mask, R))
      Out.push_back(Rep);
  std::sort(Out.begin(), Out.end());
  return Out;
}
