//===- pyast/Lexer.cpp - Indentation-aware Python lexer -------------------===//

#include "pyast/Lexer.h"

#include <cassert>
#include <cctype>

using namespace seldon;
using namespace seldon::pyast;

Lexer::Lexer(std::string_view Source) : Source(Source) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::error(const std::string &Message) {
  Errors.push_back({TokLine, TokCol, Message});
}

Token Lexer::makeToken(TokenKind Kind, std::string Text) const {
  return {Kind, std::move(Text), TokLine, TokCol};
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

static bool isStringPrefix(const std::string &Ident) {
  if (Ident.empty() || Ident.size() > 3)
    return false;
  for (char C : Ident) {
    char L = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    if (L != 'r' && L != 'b' && L != 'u' && L != 'f')
      return false;
  }
  return true;
}

bool Lexer::handleIndentation(std::vector<Token> &Out) {
  for (;;) {
    int Width = 0;
    while (!atEnd() && (peek() == ' ' || peek() == '\t')) {
      Width = peek() == '\t' ? (Width / 8 + 1) * 8 : Width + 1;
      advance();
    }
    if (atEnd())
      return false;
    if (peek() == '\r') {
      advance();
      continue;
    }
    // Blank lines and comment-only lines carry no indentation information.
    if (peek() == '\n') {
      advance();
      continue;
    }
    if (peek() == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    TokLine = Line;
    TokCol = Col;
    if (Width > IndentStack.back()) {
      IndentStack.push_back(Width);
      Out.push_back(makeToken(TokenKind::Indent));
      return true;
    }
    while (Width < IndentStack.back()) {
      IndentStack.pop_back();
      Out.push_back(makeToken(TokenKind::Dedent));
      if (Width > IndentStack.back()) {
        error("unindent does not match any outer indentation level");
        IndentStack.push_back(Width);
        break;
      }
    }
    return true;
  }
}

void Lexer::lexNumber(std::vector<Token> &Out) {
  std::string Text;
  auto TakeWhile = [&](auto Pred) {
    while (!atEnd() && Pred(peek()))
      Text += advance();
  };
  auto IsDigitOrUnderscore = [](char C) {
    return std::isdigit(static_cast<unsigned char>(C)) || C == '_';
  };

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X' || peek(1) == 'o' ||
                        peek(1) == 'O' || peek(1) == 'b' || peek(1) == 'B')) {
    Text += advance();
    Text += advance();
    TakeWhile([](char C) {
      return std::isxdigit(static_cast<unsigned char>(C)) || C == '_';
    });
    Out.push_back(makeToken(TokenKind::Number, Text));
    return;
  }

  TakeWhile(IsDigitOrUnderscore);
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    Text += advance();
    TakeWhile(IsDigitOrUnderscore);
  } else if (peek() == '.' && !Text.empty() && !isIdentStart(peek(1)) &&
             peek(1) != '.') {
    // Trailing-dot float like `1.` — but not `1..attr` or `1.foo`.
    Text += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char Sign = peek(1);
    if (std::isdigit(static_cast<unsigned char>(Sign)) ||
        ((Sign == '+' || Sign == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      Text += advance();
      if (peek() == '+' || peek() == '-')
        Text += advance();
      TakeWhile(IsDigitOrUnderscore);
    }
  }
  if (peek() == 'j' || peek() == 'J')
    Text += advance();
  Out.push_back(makeToken(TokenKind::Number, Text));
}

void Lexer::lexString(std::vector<Token> &Out, std::string Prefix) {
  bool Raw = false, FString = false;
  for (char C : Prefix) {
    if (C == 'r' || C == 'R')
      Raw = true;
    if (C == 'f' || C == 'F')
      FString = true;
  }

  char Quote = advance();
  bool Triple = false;
  if (peek() == Quote && peek(1) == Quote) {
    advance();
    advance();
    Triple = true;
  }

  std::string Text;
  for (;;) {
    if (atEnd() || (!Triple && peek() == '\n')) {
      error("unterminated string literal");
      break;
    }
    char C = advance();
    if (C == Quote) {
      if (!Triple)
        break;
      if (peek() == Quote && peek(1) == Quote) {
        advance();
        advance();
        break;
      }
      Text += C;
      continue;
    }
    if (C == '\\' && !Raw && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n': Text += '\n'; break;
      case 't': Text += '\t'; break;
      case 'r': Text += '\r'; break;
      case '0': Text += '\0'; break;
      case '\\': Text += '\\'; break;
      case '\'': Text += '\''; break;
      case '"': Text += '"'; break;
      case '\n': break; // Line continuation inside a string.
      default:
        Text += '\\';
        Text += E;
        break;
      }
      continue;
    }
    Text += C;
  }
  Token Tok = makeToken(TokenKind::String, Text);
  Tok.IsFString = FString;
  Out.push_back(Tok);
}

void Lexer::lexOperator(std::vector<Token> &Out) {
  struct OpEntry {
    const char *Spelling;
    TokenKind Kind;
  };
  // Ordered longest-first so the first prefix match is the longest match.
  static const OpEntry Ops[] = {
      {"**=", TokenKind::DoubleStarEq},
      {"//=", TokenKind::DoubleSlashEq},
      {"<<=", TokenKind::LShiftEq},
      {">>=", TokenKind::RShiftEq},
      {"->", TokenKind::Arrow},
      {":=", TokenKind::Walrus},
      {"**", TokenKind::DoubleStar},
      {"//", TokenKind::DoubleSlash},
      {"<<", TokenKind::LShift},
      {">>", TokenKind::RShift},
      {"==", TokenKind::EqEq},
      {"!=", TokenKind::NotEq},
      {"<=", TokenKind::LessEq},
      {">=", TokenKind::GreaterEq},
      {"+=", TokenKind::PlusEq},
      {"-=", TokenKind::MinusEq},
      {"*=", TokenKind::StarEq},
      {"/=", TokenKind::SlashEq},
      {"%=", TokenKind::PercentEq},
      {"&=", TokenKind::AmpEq},
      {"|=", TokenKind::PipeEq},
      {"^=", TokenKind::CaretEq},
      {"@=", TokenKind::AtEq},
      {"(", TokenKind::LParen},
      {")", TokenKind::RParen},
      {"[", TokenKind::LBracket},
      {"]", TokenKind::RBracket},
      {"{", TokenKind::LBrace},
      {"}", TokenKind::RBrace},
      {",", TokenKind::Comma},
      {":", TokenKind::Colon},
      {";", TokenKind::Semicolon},
      {".", TokenKind::Dot},
      {"@", TokenKind::At},
      {"=", TokenKind::Equal},
      {"+", TokenKind::Plus},
      {"-", TokenKind::Minus},
      {"*", TokenKind::Star},
      {"/", TokenKind::Slash},
      {"%", TokenKind::Percent},
      {"&", TokenKind::Amp},
      {"|", TokenKind::Pipe},
      {"^", TokenKind::Caret},
      {"~", TokenKind::Tilde},
      {"<", TokenKind::Less},
      {">", TokenKind::Greater},
  };

  for (const OpEntry &Op : Ops) {
    size_t Len = std::char_traits<char>::length(Op.Spelling);
    if (Source.compare(Pos, Len, Op.Spelling) != 0)
      continue;
    for (size_t I = 0; I < Len; ++I)
      advance();
    switch (Op.Kind) {
    case TokenKind::LParen:
    case TokenKind::LBracket:
    case TokenKind::LBrace:
      ++BracketDepth;
      break;
    case TokenKind::RParen:
    case TokenKind::RBracket:
    case TokenKind::RBrace:
      if (BracketDepth > 0)
        --BracketDepth;
      break;
    default:
      break;
    }
    Out.push_back(makeToken(Op.Kind));
    return;
  }

  error(std::string("unexpected character '") + peek() + "'");
  advance();
  Out.push_back(makeToken(TokenKind::Error));
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  bool AtLineStart = true;
  while (!atEnd()) {
    if (AtLineStart && BracketDepth == 0) {
      if (!handleIndentation(Out))
        break;
      AtLineStart = false;
      continue;
    }
    char C = peek();
    if (C == '#') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '\n') {
      TokLine = Line;
      TokCol = Col;
      advance();
      if (BracketDepth == 0) {
        Out.push_back(makeToken(TokenKind::Newline));
        AtLineStart = true;
      }
      continue;
    }
    if (C == '\\' && peek(1) == '\n') {
      advance();
      advance();
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }

    TokLine = Line;
    TokCol = Col;
    if (isIdentStart(C)) {
      std::string Ident;
      while (!atEnd() && isIdentCont(peek()))
        Ident += advance();
      if (isStringPrefix(Ident) && (peek() == '"' || peek() == '\'')) {
        lexString(Out, Ident);
        continue;
      }
      TokenKind Kind = classifyIdentifier(Ident);
      Out.push_back(makeToken(Kind, Kind == TokenKind::Name
                                        ? std::move(Ident)
                                        : std::string()));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      lexNumber(Out);
      continue;
    }
    if (C == '"' || C == '\'') {
      lexString(Out, "");
      continue;
    }
    lexOperator(Out);
  }

  TokLine = Line;
  TokCol = Col;
  // Close the final logical line if the file does not end with a newline.
  if (!Out.empty() && Out.back().isNot(TokenKind::Newline) &&
      Out.back().isNot(TokenKind::Dedent))
    Out.push_back(makeToken(TokenKind::Newline));
  while (IndentStack.back() > 0) {
    IndentStack.pop_back();
    Out.push_back(makeToken(TokenKind::Dedent));
  }
  Out.push_back(makeToken(TokenKind::EndOfFile));
  return Out;
}
