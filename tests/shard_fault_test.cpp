//===- tests/shard_fault_test.cpp - Shard codec corruption injection ------===//
//
// Fault injection against the shard codec and cache: every truncation
// point and a bit flip in every byte of a valid encoding must produce a
// descriptive error, never a partially-populated shard; ShardCache must
// evict the bad entry; and a Session run over a corrupted shard store must
// transparently re-extract with byte-identical output. Mirrors
// cache_fault_test.cpp for the graph cache.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "cache/ShardCache.h"
#include "constraints/ShardCodec.h"
#include "infer/Pipeline.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace seldon;
using namespace seldon::constraints;

namespace fs = std::filesystem;

namespace {

/// A non-trivial shard (one whole project's files) plus a shard cache key.
struct Fixture {
  corpus::Corpus Data = testutil::makeCorpus(9191, /*NumProjects=*/2);
  propgraph::PropagationGraph Graph =
      propgraph::buildProjectGraph(Data.Projects.front());
  ConstraintShard Shard = extractShard(
      Graph, 0, static_cast<uint32_t>(Graph.files().size()));
  cache::CacheKey Key = cache::projectShardKey(
      cache::projectCacheKey(Data.Projects.front(),
                             propgraph::BuildOptions()),
      GenOptions(), Data.Seed);
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

//===----------------------------------------------------------------------===//
// Codec-level: round trip, truncation at every byte, flip of every byte
//===----------------------------------------------------------------------===//

TEST(ShardCodecTest, RoundTripIsCanonical) {
  Fixture F;
  ASSERT_GT(F.Shard.numAnchors(), 0u) << "fixture shard is trivial";
  std::string Encoded = encodeShard(F.Shard);
  io::IOResult<ConstraintShard> R = decodeShard(Encoded);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Value.Strings, F.Shard.Strings);
  EXPECT_EQ(R.Value.Events.size(), F.Shard.Events.size());
  EXPECT_EQ(R.Value.Files.size(), F.Shard.Files.size());
  EXPECT_EQ(R.Value.numAnchors(), F.Shard.numAnchors());
  // Canonical: re-encoding the decoded shard reproduces the bytes.
  EXPECT_EQ(encodeShard(R.Value), Encoded);
}

TEST(ShardCodecFaultTest, EveryTruncationIsRejected) {
  Fixture F;
  std::string Encoded = encodeShard(F.Shard);
  ASSERT_GT(Encoded.size(), 16u);
  for (size_t Len = 0; Len < Encoded.size(); ++Len) {
    io::IOResult<ConstraintShard> R =
        decodeShard(std::string_view(Encoded).substr(0, Len));
    EXPECT_FALSE(R.ok()) << "truncation to " << Len
                         << " byte(s) decoded successfully";
    EXPECT_FALSE(R.Error.empty());
    // Strictness: the value is never partially populated.
    EXPECT_TRUE(R.Value.Strings.empty()) << "partial shard at " << Len;
    EXPECT_TRUE(R.Value.Files.empty());
  }
}

TEST(ShardCodecFaultTest, EveryBitFlipIsRejected) {
  Fixture F;
  std::string Encoded = encodeShard(F.Shard);
  std::string Baseline = encodeShard(F.Shard);
  for (size_t I = 0; I < Encoded.size(); ++I) {
    std::string Mutated = Encoded;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0xff);
    io::IOResult<ConstraintShard> R = decodeShard(Mutated);
    EXPECT_FALSE(R.ok()) << "flip at byte " << I << " decoded successfully";
    EXPECT_FALSE(R.Error.empty()) << "flip at byte " << I;
    EXPECT_TRUE(R.Value.Strings.empty()) << "partial shard, flip at " << I;
  }
  EXPECT_EQ(Encoded, Baseline);
}

//===----------------------------------------------------------------------===//
// Cache-level: mutated entries are evicted, then re-extracted
//===----------------------------------------------------------------------===//

struct Region {
  const char *Name;
  size_t Offset;
};

TEST(ShardCacheFaultTest, FlippedRegionsAreEvictedThenRestored) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("shard-fault");
  cache::ShardCache Cache(Dir);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  ASSERT_TRUE(Cache.store(F.Key, F.Shard));
  std::string Path = Cache.entryPath(F.Key);
  std::string Valid = readFileBytes(Path);
  ASSERT_GT(Valid.size(), 32u);

  // Offsets: key prefix [0,8), magic [8,12), version [12,13), checksum
  // [13,21), payload length varint [21,...), then payload (strings first,
  // events midway, file anchors near the end).
  const Region Regions[] = {
      {"key prefix", 0},
      {"magic", 8},
      {"format version", 12},
      {"checksum", 13},
      {"payload length", 21},
      {"payload head (strings)", 24},
      {"payload middle (events)", Valid.size() / 2},
      {"payload tail (anchors)", Valid.size() - 1},
  };

  for (const Region &R : Regions) {
    ASSERT_LT(R.Offset, Valid.size()) << R.Name;
    std::string Mutated = Valid;
    Mutated[R.Offset] = static_cast<char>(Mutated[R.Offset] ^ 0xff);
    writeFileBytes(Path, Mutated);

    cache::ShardCache Fresh(Dir);
    uint64_t EvictionsBefore = Fresh.stats().Evictions;
    std::optional<ConstraintShard> Loaded = Fresh.load(F.Key);
    EXPECT_FALSE(Loaded.has_value())
        << "corrupt " << R.Name << " entry loaded successfully";
    cache::CacheStats Stats = Fresh.stats();
    EXPECT_EQ(Stats.Evictions, EvictionsBefore + 1) << R.Name;
    EXPECT_EQ(Stats.Hits, 0u) << R.Name;
    ASSERT_FALSE(Stats.Errors.empty()) << R.Name;
    EXPECT_NE(Stats.Errors.back().find("evicted"), std::string::npos)
        << R.Name << ": " << Stats.Errors.back();
    EXPECT_FALSE(fs::exists(Path)) << R.Name << " entry survived eviction";

    // Re-extraction + re-store round-trips to a loadable entry again.
    ASSERT_TRUE(Fresh.store(F.Key, F.Shard)) << R.Name;
    std::optional<ConstraintShard> Reloaded = Fresh.load(F.Key);
    ASSERT_TRUE(Reloaded.has_value()) << R.Name;
    EXPECT_EQ(Reloaded->numAnchors(), F.Shard.numAnchors());
    EXPECT_EQ(readFileBytes(Path), Valid) << R.Name;
  }
  fs::remove_all(Dir);
}

TEST(ShardCacheFaultTest, EveryTruncationOfAnEntryIsEvicted) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("shard-trunc");
  cache::ShardCache Cache(Dir);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  ASSERT_TRUE(Cache.store(F.Key, F.Shard));
  std::string Path = Cache.entryPath(F.Key);
  std::string Valid = readFileBytes(Path);

  // Step 7 keeps the sweep fast while still crossing every header/section
  // boundary; the codec-level test above covers every single byte.
  for (size_t Len = 0; Len < Valid.size(); Len += 7) {
    writeFileBytes(Path, Valid.substr(0, Len));
    std::optional<ConstraintShard> Loaded = Cache.load(F.Key);
    EXPECT_FALSE(Loaded.has_value())
        << "entry truncated to " << Len << " byte(s) loaded";
    EXPECT_FALSE(fs::exists(Path)) << "truncated entry not evicted";
  }
  cache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_GT(Stats.Evictions, 0u);
  EXPECT_EQ(Stats.Evictions, Stats.Errors.size());
  fs::remove_all(Dir);
}

TEST(ShardCacheFaultTest, WrongKeyEntryIsRejected) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("shard-wrongkey");
  cache::ShardCache Cache(Dir);
  ASSERT_TRUE(Cache.store(F.Key, F.Shard));

  cache::CacheKey Other;
  Other.Hash = F.Key.Hash + 1;
  fs::copy_file(Cache.entryPath(F.Key), Cache.entryPath(Other));
  EXPECT_FALSE(Cache.load(Other).has_value());
  cache::CacheStats Stats = Cache.stats();
  ASSERT_FALSE(Stats.Errors.empty());
  EXPECT_NE(Stats.Errors.back().find("key mismatch"), std::string::npos)
      << Stats.Errors.back();
  EXPECT_FALSE(fs::exists(Cache.entryPath(Other)));
  fs::remove_all(Dir);
}

/// End to end: a corrupted shard inside a Session run falls back to a
/// fresh extraction with byte-identical output and a re-written entry.
TEST(ShardCacheFaultTest, SessionReextractsCorruptShardsTransparently) {
  corpus::Corpus Data = testutil::makeCorpus(1515, /*NumProjects=*/4);
  infer::PipelineOptions Opts;
  Opts.Solve.MaxIterations = 200;
  Opts.Jobs = 1;

  std::string RefSpec;
  {
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    RefSpec = spec::writeLearnedSpec(S.solve().Learned);
  }

  std::string Dir = testutil::makeScratchDir("shard-session");
  auto runCached = [&]() {
    infer::Session S(Opts);
    S.enableShardCache(Dir);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    return S.solve();
  };
  {
    infer::PipelineResult Cold = runCached();
    EXPECT_EQ(Cold.Incr.ShardsRebuilt, Data.Projects.size());
  }

  // Corrupt one entry; the next run must evict + re-extract exactly it.
  std::vector<std::string> Entries;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    Entries.push_back(E.path().string());
  ASSERT_EQ(Entries.size(), Data.Projects.size());
  std::string Victim = Entries.front();
  std::string Bytes = readFileBytes(Victim);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0xff);
  writeFileBytes(Victim, Bytes);

  {
    infer::PipelineResult Warm = runCached();
    EXPECT_EQ(Warm.Incr.ShardsHit, Data.Projects.size() - 1);
    EXPECT_EQ(Warm.Incr.ShardsRebuilt, 1u);
    EXPECT_EQ(Warm.ShardCacheStats.Evictions, 1u);
    ASSERT_EQ(Warm.ShardCacheStats.Errors.size(), 1u);
    EXPECT_NE(Warm.ShardCacheStats.Errors[0].find("evicted"),
              std::string::npos);
    EXPECT_EQ(spec::writeLearnedSpec(Warm.Learned), RefSpec);
  }

  // The re-extraction re-stored the entry: the next run is all hits.
  {
    infer::PipelineResult Warm = runCached();
    EXPECT_EQ(Warm.Incr.ShardsHit, Data.Projects.size());
    EXPECT_EQ(Warm.Incr.ShardsRebuilt, 0u);
    EXPECT_EQ(spec::writeLearnedSpec(Warm.Learned), RefSpec);
  }
  fs::remove_all(Dir);
}

} // namespace
