//===- tests/projectloader_test.cpp - Tests for filesystem loading --------===//

#include "pysem/ProjectLoader.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

using namespace seldon;
using namespace seldon::pysem;

namespace {

/// Creates a throwaway directory tree, removed on destruction.
class TempTree {
public:
  TempTree() {
    Root = fs::temp_directory_path() /
           ("seldon_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(Counter++));
    fs::create_directories(Root);
  }
  ~TempTree() {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  void write(const std::string &Relative, const std::string &Content) {
    fs::path Path = Root / Relative;
    fs::create_directories(Path.parent_path());
    std::ofstream Out(Path);
    Out << Content;
  }

  std::string path() const { return Root.string(); }

private:
  fs::path Root;
  static int Counter;
};

int TempTree::Counter = 0;

TEST(ProjectLoaderTest, LoadsPyFilesRecursively) {
  TempTree Tree;
  Tree.write("app.py", "x = 1\n");
  Tree.write("pkg/views.py", "y = 2\n");
  Tree.write("pkg/__init__.py", "");
  Tree.write("README.md", "not python\n");

  auto Proj = loadProjectFromDir(Tree.path());
  ASSERT_TRUE(Proj.has_value());
  EXPECT_EQ(Proj->modules().size(), 3u);
  bool FoundViews = false;
  for (const ModuleInfo &M : Proj->modules()) {
    if (M.Path == "pkg/views.py") {
      FoundViews = true;
      EXPECT_EQ(M.ModuleName, "pkg.views");
    }
    EXPECT_NE(M.Path, "README.md");
  }
  EXPECT_TRUE(FoundViews);
}

TEST(ProjectLoaderTest, DeterministicModuleOrder) {
  TempTree Tree;
  Tree.write("b.py", "x = 1\n");
  Tree.write("a.py", "x = 1\n");
  Tree.write("c.py", "x = 1\n");
  auto Proj = loadProjectFromDir(Tree.path());
  ASSERT_TRUE(Proj.has_value());
  ASSERT_EQ(Proj->modules().size(), 3u);
  EXPECT_EQ(Proj->modules()[0].Path, "a.py");
  EXPECT_EQ(Proj->modules()[1].Path, "b.py");
  EXPECT_EQ(Proj->modules()[2].Path, "c.py");
}

TEST(ProjectLoaderTest, SkipsConfiguredDirectories) {
  TempTree Tree;
  Tree.write("app.py", "x = 1\n");
  Tree.write(".git/hook.py", "x = 1\n");
  Tree.write("__pycache__/cached.py", "x = 1\n");
  Tree.write("venv/lib/site.py", "x = 1\n");
  auto Proj = loadProjectFromDir(Tree.path());
  ASSERT_TRUE(Proj.has_value());
  EXPECT_EQ(Proj->modules().size(), 1u);
}

TEST(ProjectLoaderTest, SkipsOversizedFiles) {
  TempTree Tree;
  Tree.write("small.py", "x = 1\n");
  Tree.write("big.py", std::string(4096, '#') + "\n");
  LoadOptions Opts;
  Opts.MaxFileBytes = 1024;
  auto Proj = loadProjectFromDir(Tree.path(), Opts);
  ASSERT_TRUE(Proj.has_value());
  EXPECT_EQ(Proj->modules().size(), 1u);
  EXPECT_EQ(Proj->modules()[0].Path, "small.py");
}

TEST(ProjectLoaderTest, MissingDirectoryReturnsNullopt) {
  EXPECT_FALSE(loadProjectFromDir("/nonexistent/definitely/missing")
                   .has_value());
}

TEST(ProjectLoaderTest, ProjectNamedAfterDirectory) {
  TempTree Tree;
  Tree.write("app.py", "x = 1\n");
  auto Proj = loadProjectFromDir(Tree.path());
  ASSERT_TRUE(Proj.has_value());
  EXPECT_FALSE(Proj->name().empty());
  EXPECT_NE(Proj->name(), "project");
}

TEST(ProjectLoaderTest, ParseErrorsSurfaceOnModules) {
  TempTree Tree;
  Tree.write("bad.py", "def f(:\n    pass\n");
  auto Proj = loadProjectFromDir(Tree.path());
  ASSERT_TRUE(Proj.has_value());
  EXPECT_GT(Proj->numErrors(), 0u);
}

TEST(ReadFileTest, ReadsAndFails) {
  TempTree Tree;
  Tree.write("data.txt", "hello\nworld\n");
  auto Content = readFile(Tree.path() + "/data.txt");
  ASSERT_TRUE(Content.has_value());
  EXPECT_EQ(*Content, "hello\nworld\n");
  EXPECT_FALSE(readFile(Tree.path() + "/missing.txt").has_value());
}

} // namespace
