//===- constraints/VarTable.h - (rep, role) -> variable ids ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps (representation, role) pairs to dense optimizer variable ids
/// (paper §4.1/§4.3: one score variable per backoff option per role).
/// Variables are created lazily, so only pairs that actually occur in a
/// constraint or seed label consume a column.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_VARTABLE_H
#define SELDON_CONSTRAINTS_VARTABLE_H

#include "propgraph/RepTable.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace constraints {

using propgraph::RepId;
using propgraph::Role;

/// Dense optimizer variable id.
using VarId = uint32_t;

/// Lazily-created dense table of (representation, role) variables.
class VarTable {
public:
  /// The variable for (\p Rep, \p R), created on first use.
  VarId varFor(RepId Rep, Role R);

  /// Looks up an existing variable; returns false when absent.
  bool lookup(RepId Rep, Role R, VarId &Out) const;

  size_t numVars() const { return Infos.size(); }

  RepId repOf(VarId V) const { return Infos[V].Rep; }
  Role roleOf(VarId V) const { return Infos[V].R; }

private:
  struct VarInfo {
    RepId Rep;
    Role R;
  };

  static uint64_t keyOf(RepId Rep, Role R) {
    return (static_cast<uint64_t>(Rep) << 2) | static_cast<uint64_t>(R);
  }

  std::unordered_map<uint64_t, VarId> Ids;
  std::vector<VarInfo> Infos;
};

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_VARTABLE_H
