file(REMOVE_RECURSE
  "libseldon_pointsto.a"
)
