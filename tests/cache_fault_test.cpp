//===- tests/cache_fault_test.cpp - Cache corruption injection ------------===//
//
// Fault injection against the cache loader: every truncation point and a
// bit flip in every region of a valid entry must produce a descriptive
// error, never a partially-populated graph; GraphCache must evict the bad
// entry and the pipeline must transparently rebuild it with byte-identical
// output.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "cache/GraphCache.h"
#include "cache/ShardCache.h"
#include "infer/Pipeline.h"
#include "propgraph/GraphCodec.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

using namespace seldon;
using namespace seldon::propgraph;

namespace fs = std::filesystem;

namespace {

/// A non-trivial project graph plus its cache key, shared by the suites.
struct Fixture {
  corpus::Corpus Data = testutil::makeCorpus(4242, /*NumProjects=*/2);
  const pysem::Project &Proj = Data.Projects.front();
  PropagationGraph Graph = buildProjectGraph(Proj);
  cache::CacheKey Key =
      cache::projectCacheKey(Proj, propgraph::BuildOptions());
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

//===----------------------------------------------------------------------===//
// Codec-level: truncation at every byte, flip of every byte
//===----------------------------------------------------------------------===//

TEST(CodecFaultTest, EveryTruncationIsRejected) {
  Fixture F;
  std::string Encoded = encodeGraph(F.Graph);
  ASSERT_GT(Encoded.size(), 16u);
  for (size_t Len = 0; Len < Encoded.size(); ++Len) {
    io::IOResult<PropagationGraph> R =
        decodeGraph(std::string_view(Encoded).substr(0, Len));
    EXPECT_FALSE(R.ok()) << "truncation to " << Len
                         << " byte(s) decoded successfully";
    EXPECT_FALSE(R.Error.empty());
    // Strictness: the value is never partially populated.
    EXPECT_EQ(R.Value.numEvents(), 0u) << "partial graph at length " << Len;
    EXPECT_EQ(R.Value.files().size(), 0u);
  }
}

TEST(CodecFaultTest, EveryBitFlipIsRejected) {
  Fixture F;
  std::string Encoded = encodeGraph(F.Graph);
  std::string Baseline = encodeGraph(F.Graph);
  for (size_t I = 0; I < Encoded.size(); ++I) {
    std::string Mutated = Encoded;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0xff);
    io::IOResult<PropagationGraph> R = decodeGraph(Mutated);
    EXPECT_FALSE(R.ok()) << "flip at byte " << I
                         << " decoded successfully";
    EXPECT_FALSE(R.Error.empty()) << "flip at byte " << I;
    EXPECT_EQ(R.Value.numEvents(), 0u) << "partial graph, flip at " << I;
  }
  // The sweep itself must not have perturbed anything.
  EXPECT_EQ(Encoded, Baseline);
}

//===----------------------------------------------------------------------===//
// Cache-level: mutated entries are evicted and rebuilt
//===----------------------------------------------------------------------===//

/// Region boundaries of a cache entry file: the 8-byte key prefix, then
/// the codec's header fields, then the payload sections. One mutation per
/// region exercises every distinct rejection path.
struct Region {
  const char *Name;
  size_t Offset;
};

TEST(CacheFaultTest, FlippedRegionsAreEvictedThenRebuilt) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("cache-fault");
  cache::GraphCache Cache(Dir);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  ASSERT_TRUE(Cache.store(F.Key, F.Graph));
  std::string Path = Cache.entryPath(F.Key);
  std::string Valid = readFileBytes(Path);
  ASSERT_GT(Valid.size(), 32u);

  // Offsets: key prefix [0,8), magic [8,12), version [12,13), checksum
  // [13,21), payload length varint [21,...), then payload (files first,
  // events midway, edges near the end).
  const Region Regions[] = {
      {"key prefix", 0},
      {"magic", 8},
      {"format version", 12},
      {"checksum", 13},
      {"payload length", 21},
      {"payload head (files)", 24},
      {"payload middle (events)", Valid.size() / 2},
      {"payload tail (edges)", Valid.size() - 1},
  };

  for (const Region &R : Regions) {
    ASSERT_LT(R.Offset, Valid.size()) << R.Name;
    std::string Mutated = Valid;
    Mutated[R.Offset] = static_cast<char>(Mutated[R.Offset] ^ 0xff);
    writeFileBytes(Path, Mutated);

    cache::GraphCache Fresh(Dir);
    uint64_t EvictionsBefore = Fresh.stats().Evictions;
    std::optional<PropagationGraph> Loaded = Fresh.load(F.Key);
    EXPECT_FALSE(Loaded.has_value())
        << "corrupt " << R.Name << " entry loaded successfully";
    cache::CacheStats Stats = Fresh.stats();
    EXPECT_EQ(Stats.Evictions, EvictionsBefore + 1) << R.Name;
    EXPECT_EQ(Stats.Hits, 0u) << R.Name;
    ASSERT_FALSE(Stats.Errors.empty()) << R.Name;
    EXPECT_NE(Stats.Errors.back().find("evicted"), std::string::npos)
        << R.Name << ": " << Stats.Errors.back();
    // The bad entry is gone from disk...
    EXPECT_FALSE(fs::exists(Path))
        << R.Name << " entry survived eviction";

    // ...and a rebuild + re-store round-trips to a loadable entry again.
    ASSERT_TRUE(Fresh.store(F.Key, F.Graph)) << R.Name;
    std::optional<PropagationGraph> Reloaded = Fresh.load(F.Key);
    ASSERT_TRUE(Reloaded.has_value()) << R.Name;
    EXPECT_EQ(Reloaded->numEvents(), F.Graph.numEvents());
    EXPECT_EQ(Reloaded->numEdges(), F.Graph.numEdges());
    EXPECT_EQ(readFileBytes(Path), Valid) << R.Name;
  }
  fs::remove_all(Dir);
}

TEST(CacheFaultTest, EveryTruncationOfAnEntryIsEvicted) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("cache-trunc");
  cache::GraphCache Cache(Dir);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  ASSERT_TRUE(Cache.store(F.Key, F.Graph));
  std::string Path = Cache.entryPath(F.Key);
  std::string Valid = readFileBytes(Path);

  // Step 7 keeps the sweep fast while still crossing every header/section
  // boundary; the codec-level test above covers every single byte.
  for (size_t Len = 0; Len < Valid.size(); Len += 7) {
    writeFileBytes(Path, Valid.substr(0, Len));
    std::optional<PropagationGraph> Loaded = Cache.load(F.Key);
    EXPECT_FALSE(Loaded.has_value())
        << "entry truncated to " << Len << " byte(s) loaded";
    EXPECT_FALSE(fs::exists(Path)) << "truncated entry not evicted";
  }
  cache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 0u);
  EXPECT_GT(Stats.Evictions, 0u);
  EXPECT_EQ(Stats.Evictions, Stats.Errors.size());
  fs::remove_all(Dir);
}

TEST(CacheFaultTest, WrongKeyEntryIsRejected) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("cache-wrongkey");
  cache::GraphCache Cache(Dir);
  ASSERT_TRUE(Cache.store(F.Key, F.Graph));

  // Copy the valid entry under a different key's filename: the stored key
  // prefix no longer matches the lookup key.
  cache::CacheKey Other;
  Other.Hash = F.Key.Hash + 1;
  fs::copy_file(Cache.entryPath(F.Key), Cache.entryPath(Other));
  EXPECT_FALSE(Cache.load(Other).has_value());
  cache::CacheStats Stats = Cache.stats();
  ASSERT_FALSE(Stats.Errors.empty());
  EXPECT_NE(Stats.Errors.back().find("key mismatch"), std::string::npos)
      << Stats.Errors.back();
  EXPECT_FALSE(fs::exists(Cache.entryPath(Other)));
  fs::remove_all(Dir);
}

/// End to end: a corrupted entry inside a Session run falls back to a cold
/// build with byte-identical output and a re-written, loadable entry.
TEST(CacheFaultTest, SessionRebuildsCorruptEntriesTransparently) {
  corpus::Corpus Data = testutil::makeCorpus(505, /*NumProjects=*/4);
  infer::PipelineOptions Opts;
  Opts.Solve.MaxIterations = 200;
  Opts.Jobs = 1;

  infer::PipelineResult Reference;
  {
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    Reference = S.solve();
  }
  std::string RefSpec = spec::writeLearnedSpec(Reference.Learned);

  std::string Dir = testutil::makeScratchDir("cache-session");
  {
    infer::Session S(Opts);
    S.enableCache(Dir);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    infer::PipelineResult Cold = S.solve();
    EXPECT_EQ(Cold.Cache.Misses, Data.Projects.size());
  }

  // Corrupt one entry; a warm run must evict + rebuild exactly it.
  std::vector<std::string> Entries;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    Entries.push_back(E.path().string());
  ASSERT_EQ(Entries.size(), Data.Projects.size());
  std::string Victim = Entries.front();
  std::string Bytes = readFileBytes(Victim);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0xff);
  writeFileBytes(Victim, Bytes);

  {
    infer::Session S(Opts);
    S.enableCache(Dir);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    infer::PipelineResult Warm = S.solve();
    EXPECT_EQ(Warm.Cache.Hits, Data.Projects.size() - 1);
    EXPECT_EQ(Warm.Cache.Misses, 1u);
    EXPECT_EQ(Warm.Cache.Evictions, 1u);
    ASSERT_EQ(Warm.Cache.Errors.size(), 1u);
    EXPECT_NE(Warm.Cache.Errors[0].find("evicted"), std::string::npos);
    EXPECT_EQ(spec::writeLearnedSpec(Warm.Learned), RefSpec);
  }

  // The rebuild re-stored the entry: a second warm run is all hits.
  {
    infer::Session S(Opts);
    S.enableCache(Dir);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    infer::PipelineResult Warm = S.solve();
    EXPECT_EQ(Warm.Cache.Hits, Data.Projects.size());
    EXPECT_EQ(Warm.Cache.Misses, 0u);
    EXPECT_EQ(spec::writeLearnedSpec(Warm.Learned), RefSpec);
  }
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Crash-leaked store temporaries
//===----------------------------------------------------------------------===//

TEST(CacheFaultTest, StaleStoreTempsAreSweptOnOpen) {
  Fixture F;
  std::string Dir = testutil::makeScratchDir("cache-tmp-sweep");
  std::string Entry;
  {
    cache::GraphCache Cache(Dir);
    ASSERT_TRUE(Cache.valid()) << Cache.error();
    ASSERT_TRUE(Cache.store(F.Key, F.Graph));
    Entry = Cache.entryPath(F.Key);
  }
  // Plant: an hour-old temp (a crashed store), a fresh temp (a live
  // writer in another process), and a temp-lookalike whose suffix is not
  // all digits (never produced by a store — must survive).
  std::string OldTmp = Entry + ".tmp7";
  std::string FreshTmp = Entry + ".tmp8";
  std::string Lookalike = Entry + ".tmp9x";
  writeFileBytes(OldTmp, "half-written");
  writeFileBytes(FreshTmp, "in-flight");
  writeFileBytes(Lookalike, "not a temp");
  fs::last_write_time(OldTmp, fs::file_time_type::clock::now() -
                                  std::chrono::hours(1));

  cache::GraphCache Reopened(Dir);
  ASSERT_TRUE(Reopened.valid()) << Reopened.error();
  EXPECT_EQ(Reopened.stats().StaleTempsRemoved, 1u);
  EXPECT_FALSE(fs::exists(OldTmp)) << "aged temp must be swept";
  EXPECT_TRUE(fs::exists(FreshTmp)) << "recent temp may be a live writer";
  EXPECT_TRUE(fs::exists(Lookalike)) << "non-numeric suffix is not a temp";
  // The published entry is untouched and still loads.
  EXPECT_TRUE(Reopened.load(F.Key).has_value());
  fs::remove_all(Dir);
}

TEST(CacheFaultTest, ShardCacheSweepsItsOwnTemps) {
  std::string Dir = testutil::makeScratchDir("shard-tmp-sweep");
  std::string OldTmp = Dir + "/0123456789abcdef.scs.tmp3";
  // A GraphCache temp in the same directory belongs to a different
  // suffix and must not match the shard sweep.
  std::string OtherSuffix = Dir + "/0123456789abcdef.spg.tmp4";
  writeFileBytes(OldTmp, "half-written");
  writeFileBytes(OtherSuffix, "different cache");
  auto Old = fs::file_time_type::clock::now() - std::chrono::hours(1);
  fs::last_write_time(OldTmp, Old);
  fs::last_write_time(OtherSuffix, Old);

  cache::ShardCache Cache(Dir);
  ASSERT_TRUE(Cache.valid()) << Cache.error();
  EXPECT_EQ(Cache.stats().StaleTempsRemoved, 1u);
  EXPECT_FALSE(fs::exists(OldTmp));
  EXPECT_TRUE(fs::exists(OtherSuffix));
  fs::remove_all(Dir);
}

TEST(CacheFaultTest, SweepHonorsAgeThreshold) {
  std::string Dir = testutil::makeScratchDir("sweep-age");
  std::string Tmp = Dir + "/aa.spg.tmp0";
  writeFileBytes(Tmp, "x");
  // Age 0 disables the live-writer grace period: even a fresh temp goes.
  EXPECT_EQ(cache::sweepStaleTemps(Dir, ".spg", /*MaxAgeSeconds=*/0), 1u);
  EXPECT_FALSE(fs::exists(Tmp));
  fs::remove_all(Dir);
}

} // namespace
