//===- infer/RunHealth.h - Fault-tolerance run report ------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the fault-tolerant runtime had to do to finish a run: which
/// projects were quarantined and why, what the solver's numeric guards
/// recovered from, whether a deadline cut the run short, and which cache
/// operations degraded. Surfaced through PipelineResult::Health, the
/// `health.*` metrics, and the CLI's health summary / exit code — see
/// docs/architecture.md "Failure discipline".
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_INFER_RUNHEALTH_H
#define SELDON_INFER_RUNHEALTH_H

#include <cstddef>
#include <string>
#include <vector>

namespace seldon {
namespace infer {

/// Overall verdict of a pipeline run.
enum class RunStatus {
  Clean,    ///< Results identical to an undisturbed run.
  Degraded, ///< Partial or perturbed results, every deviation recorded.
  Failed,   ///< No usable results (CLI-level verdict; the pipeline throws).
};

/// Printable status name ("clean", "degraded", "failed").
inline const char *runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Clean:
    return "clean";
  case RunStatus::Degraded:
    return "degraded";
  case RunStatus::Failed:
    return "failed";
  }
  return "?";
}

/// One project the isolation boundary removed from the run.
struct QuarantinedProject {
  size_t Index = 0;   ///< Corpus position at Session::addProject time.
  std::string Name;   ///< pysem::Project::name().
  std::string Reason; ///< The captured diagnostic (exception what()).
};

/// The aggregated fault-tolerance report of one Session run.
struct RunHealth {
  /// Projects whose parse/build/cache-load threw (or that the run
  /// deadline cut off), in corpus order. The run continued over the
  /// survivors; the learned spec is byte-identical to a run over only
  /// those survivors at any Jobs value.
  std::vector<QuarantinedProject> Quarantined;

  /// Cache reads/writes that threw and were degraded to a rebuild or a
  /// skipped write-back. Results are unaffected (the cache is
  /// transparent), so incidents alone do not degrade the status.
  std::vector<std::string> CacheIncidents;

  /// Solver guard activity (mirrors solver::SolveResult).
  int SolverNonFiniteSteps = 0;
  int SolverRecoveries = 0;
  bool SolverFellBack = false;

  /// A wall-clock budget ended a stage early; DeadlineStage names it
  /// ("parse", "constraints", "solve").
  bool DeadlineExpired = false;
  std::string DeadlineStage;

  bool degraded() const {
    return !Quarantined.empty() || SolverRecoveries > 0 || SolverFellBack ||
           DeadlineExpired;
  }

  /// Clean or Degraded; Failed is only ever assigned by the CLI when the
  /// pipeline threw and produced nothing.
  RunStatus status() const {
    return degraded() ? RunStatus::Degraded : RunStatus::Clean;
  }
};

} // namespace infer
} // namespace seldon

#endif // SELDON_INFER_RUNHEALTH_H
