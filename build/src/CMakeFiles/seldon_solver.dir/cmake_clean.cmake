file(REMOVE_RECURSE
  "CMakeFiles/seldon_solver.dir/solver/AdamOptimizer.cpp.o"
  "CMakeFiles/seldon_solver.dir/solver/AdamOptimizer.cpp.o.d"
  "CMakeFiles/seldon_solver.dir/solver/Objective.cpp.o"
  "CMakeFiles/seldon_solver.dir/solver/Objective.cpp.o.d"
  "CMakeFiles/seldon_solver.dir/solver/ProjectedGradient.cpp.o"
  "CMakeFiles/seldon_solver.dir/solver/ProjectedGradient.cpp.o.d"
  "libseldon_solver.a"
  "libseldon_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
