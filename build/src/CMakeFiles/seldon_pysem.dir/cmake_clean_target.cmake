file(REMOVE_RECURSE
  "libseldon_pysem.a"
)
