# Empty compiler generated dependencies file for table6_report_categories.
# This may be replaced when dependencies are built.
