#!/usr/bin/env bash
# Full local check: the tier-1 build + tests, then a ThreadSanitizer build
# that runs the concurrency-sensitive tests (thread pool + metrics +
# parallel pipeline + fault injection), then CLI smoke runs: a metrics
# run that validates the --metrics-out JSON, a cache run, and a
# fault-injected run that must exit degraded (2) with health.* metrics
# and a spec byte-identical to a survivors-only run, and a seldond smoke
# that proves warm daemon answers match a cold CLI run byte-for-byte
# without re-parsing. Run from anywhere; builds land in build/ and
# build-tsan/.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest (smoke tier first) ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
# Fast unit suites first for quick signal, then the full tier.
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" -L smoke
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS" -LE smoke

echo
echo "=== tsan: concurrency-sensitive tests under ThreadSanitizer ==="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g"
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target threadpool_test metrics_test pipeline_parallel_test \
           compiled_objective_test simd_objective_test cache_fault_test \
           cache_pipeline_test fault_pipeline_test service_test \
           shard_fault_test shard_pipeline_test active_learning_test \
           feedback_test
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
  -R 'ThreadPoolTest|MetricsTest|TraceTest|MetricsPipelineTest|PipelineParallelTest|CompileTest|CompiledEquivalenceTest|SimdLayoutTest|SimdEquivalenceTest|SimdDispatchTest|SimdF32Test|CodecFaultTest|CacheFaultTest|CachePipelineTest|CacheStalenessTest|CacheDegradedTest|CacheKeyTest|FaultPipelineTest|ServiceTest|ServiceJsonTest|ProtocolTest|ShardCodecTest|ShardCodecFaultTest|ShardCacheFaultTest|ShardPipelineTest|ShardStalenessTest|ShardKeyTest|ShardWarmStartTest|ShardFallbackTest|ShardDegradedTest|ShardPipelineComboTest|ActiveLearningTest|UncertaintyTest|FileOracleTest|FeedbackTest'

echo
echo "=== ubsan: solver backends under UndefinedBehaviorSanitizer ==="
# float-cast-overflow matters here: the fp32 kernels convert doubles to
# float, and a coefficient overflowing to inf must be a caught bug, not
# silent UB.
cmake -B "$ROOT/build-ubsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined,float-cast-overflow -fno-sanitize-recover=all -g"
cmake --build "$ROOT/build-ubsan" -j "$JOBS" \
  --target compiled_objective_test simd_objective_test solver_test
ctest --test-dir "$ROOT/build-ubsan" --output-on-failure -j "$JOBS" \
  -R 'CompileTest|CompiledEquivalenceTest|SimdLayoutTest|SimdEquivalenceTest|SimdDispatchTest|SimdF32Test|ObjectiveTest|AdamTest|ProjectedGradientTest'

echo
echo "=== asan: service + durability tests under AddressSanitizer ==="
# The durability layer is raw-fd and buffer-slicing code (journal frames,
# snapshot decoding, torn-tail truncation) plus a daemon that dies at
# injected crash points — exactly where a heap overrun or use-after-free
# would hide. The recovery harness forks the asan-built seldond, so the
# kill-and-restart sweep runs sanitized end to end.
cmake -B "$ROOT/build-asan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address -fno-omit-frame-pointer -g"
cmake --build "$ROOT/build-asan" -j "$JOBS" \
  --target service_test durability_fault_test recovery_harness_test
ctest --test-dir "$ROOT/build-asan" --output-on-failure -j "$JOBS" \
  -R 'ServiceTest|ServiceJsonTest|ProtocolTest|JournalCodecTest|SnapshotCodecTest|StateStoreTest|RecoveryHarnessTest'

echo
echo "=== metrics smoke: seldon learn --metrics-out on a toy repo ==="
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/app.py" <<'PY'
from flask import request
import flask

def greet():
    name = request.args.get('name')
    flask.make_response('<h1>' + name + '</h1>')

def safe():
    name = request.args.get('name')
    flask.make_response(flask.escape(name))
PY
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --metrics-out "$SMOKE/metrics.json" --out "$SMOKE/learned.spec" "$SMOKE"
python3 - "$SMOKE/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
if not m["enabled"]:
    sys.exit("FAIL: metrics snapshot reports enabled=false")
paths = {s["path"] for s in m["spans"]}
for stage in ("session/parse", "session/constraints", "session/solve"):
    if stage not in paths:
        sys.exit(f"FAIL: missing {stage} span")
for s in m["spans"]:
    if s["duration_seconds"] < 0:
        sys.exit(f"FAIL: span {s['path']} has negative duration")
for c in ("parse.files", "solve.iterations", "pointsto.solves"):
    if m["counters"].get(c, 0) <= 0:
        sys.exit(f"FAIL: counter {c} not populated")
for g in ("gen.constraints", "solver.rows_before", "solver.rows_after",
          "solve.final_objective"):
    if g not in m["gauges"]:
        sys.exit(f"FAIL: gauge {g} missing")
if m["gauges"]["solver.rows_after"] > m["gauges"]["solver.rows_before"]:
    sys.exit("FAIL: dedup grew the row count")
obj = m["series"].get("solve.objective", {"count": 0})
if obj["count"] == 0 or not obj["samples"]:
    sys.exit("FAIL: no solver convergence samples")
for t in ("parse.file_seconds", "build.project_seconds"):
    if m["timers"].get(t, {"count": 0})["count"] == 0:
        sys.exit(f"FAIL: timer {t} not populated")
print("OK: metrics snapshot has all expected stages, counters, gauges, "
      "timers, and convergence samples")
EOF

echo
echo "=== cache smoke: cold + warm seldon learn with --cache-dir ==="
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/cache" --cache-stats \
  --out "$SMOKE/cold.spec" "$SMOKE"
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/cache" --cache-stats \
  --metrics-out "$SMOKE/warm-metrics.json" \
  --out "$SMOKE/warm.spec" "$SMOKE"
cmp "$SMOKE/cold.spec" "$SMOKE/warm.spec" \
  || { echo "FAIL: warm-cache spec differs from cold run"; exit 1; }
python3 - "$SMOKE/warm-metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
hits = m["counters"].get("cache.hits", 0)
misses = m["counters"].get("cache.misses", 0)
if hits <= 0:
    sys.exit(f"FAIL: warm run recorded {hits} cache hits")
if misses != 0:
    sys.exit(f"FAIL: warm run recorded {misses} cache misses")
if m["counters"].get("cache.bytes_read", 0) <= 0:
    sys.exit("FAIL: warm run read no cache bytes")
if m["timers"].get("cache.load_seconds", {"count": 0})["count"] != hits:
    sys.exit("FAIL: cache.load_seconds count disagrees with cache.hits")
print(f"OK: warm run served {hits} project(s) from the graph cache, "
      "specs byte-identical")
EOF

echo
echo "=== incremental smoke: --shard-cache re-learn after one edit ==="
mkdir -p "$SMOKE/incr/p1" "$SMOKE/incr/p2"
cp "$SMOKE/app.py" "$SMOKE/incr/p1/app.py"
cp "$SMOKE/app.py" "$SMOKE/incr/p2/app.py"
# Cold learn populates the graph + shard caches and writes the spec a
# later warm start reads.
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/incr/cache" --shard-cache \
  --out "$SMOKE/incr/learned.spec" "$SMOKE/incr/p1" "$SMOKE/incr/p2"
# The edit: one project grows a handler; the other is untouched.
cat >> "$SMOKE/incr/p1/app.py" <<'PY'

def extra():
    v = request.args.get('v')
    flask.make_response(flask.escape(v))
PY
# From-scratch reference on the edited corpus (no caches).
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --out "$SMOKE/incr/fresh.spec" "$SMOKE/incr/p1" "$SMOKE/incr/p2"
# Incremental re-learn with warm start disabled: exactly one shard
# rebuilds and the composed spec is byte-identical to from-scratch.
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/incr/cache" --shard-cache --no-warm-start \
  --metrics-out "$SMOKE/incr/metrics.json" \
  --out "$SMOKE/incr/learned.spec" "$SMOKE/incr/p1" "$SMOKE/incr/p2"
cmp "$SMOKE/incr/learned.spec" "$SMOKE/incr/fresh.spec" \
  || { echo "FAIL: incremental spec differs from from-scratch run"; exit 1; }
python3 - "$SMOKE/incr/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
g = m["gauges"]
if g.get("incr.shards_rebuilt") != 1:
    sys.exit(f"FAIL: expected 1 shard rebuild after one edit, got "
             f"{g.get('incr.shards_rebuilt')}")
if g.get("incr.shards_hit") != 1:
    sys.exit(f"FAIL: expected 1 shard hit, got {g.get('incr.shards_hit')}")
if g.get("incr.warm_start") != 0:
    sys.exit("FAIL: --no-warm-start run still flagged incr.warm_start")
if m["timers"].get("incr.merge_seconds", {"count": 0})["count"] == 0:
    sys.exit("FAIL: composed run recorded no merge time")
print("OK: one edit -> one shard rebuilt, one replayed, spec "
      "byte-identical to from-scratch")
EOF
# Warm-started re-learn: --out exists, so the solve seeds from it.
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/incr/cache" --shard-cache \
  --metrics-out "$SMOKE/incr/warm-metrics.json" \
  --out "$SMOKE/incr/learned.spec" "$SMOKE/incr/p1" "$SMOKE/incr/p2"
python3 - "$SMOKE/incr/warm-metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
g = m["gauges"]
if g.get("incr.warm_start") != 1:
    sys.exit("FAIL: re-learn over an existing --out did not warm-start")
if g.get("incr.shards_rebuilt") != 0 or g.get("incr.shards_hit") != 2:
    sys.exit(f"FAIL: expected all-hit replay, got hit="
             f"{g.get('incr.shards_hit')} rebuilt="
             f"{g.get('incr.shards_rebuilt')}")
print("OK: warm-started re-learn replayed every shard")
EOF

echo
echo "=== active smoke: seldon learn --active with a file oracle ==="
# Own corpus directory: later smokes treat "$SMOKE" itself as a corpus
# root, so the wrapper app must not land inside it.
ASMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE" "$ASMOKE"' EXIT
# The wrapper sanitizer is the point: clean() is not in the built-in
# seed, so its score variable is unpinned and the loop has candidates to
# query (the seeded flask.* reps are pinned and never proposed).
cat > "$ASMOKE/app.py" <<'PY'
from flask import request
import flask

def clean(value):
    return flask.escape(value)

def greet():
    name = request.args.get('name')
    flask.make_response('<h1>' + name + '</h1>')

def safe():
    name = request.args.get('name')
    flask.make_response(clean(name))

def page():
    v = request.args.get('v')
    flask.make_response(clean(v))
PY
cat > "$ASMOKE/oracle.json" <<'JSON'
{"answers":[{"rep":"clean()","role":"sanitizer","truth":true}]}
JSON
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --active --oracle "$ASMOKE/oracle.json" \
  --rounds 2 --queries-per-round 4 \
  --oracle-out "$ASMOKE/transcript.json" \
  --metrics-out "$ASMOKE/metrics.json" \
  --out "$ASMOKE/learned.spec" "$ASMOKE"
python3 - "$ASMOKE/metrics.json" "$ASMOKE/transcript.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
c, g = m["counters"], m["gauges"]
if c.get("active.queries", 0) < 1:
    sys.exit("FAIL: active run recorded no oracle queries")
if c.get("active.answers", 0) != 1 or c.get("active.pins_true", 0) != 1:
    sys.exit(f"FAIL: expected 1 answered query pinned true, got "
             f"answers={c.get('active.answers')} "
             f"pins_true={c.get('active.pins_true')}")
if g.get("active.rounds") != 2:
    sys.exit(f"FAIL: expected 2 rounds, got {g.get('active.rounds')}")
if g.get("active.candidates", 0) < 1 or g.get("active.pinned") != 1:
    sys.exit(f"FAIL: candidates={g.get('active.candidates')} "
             f"pinned={g.get('active.pinned')}")
if g.get("active.queried_fraction", 0) <= 0:
    sys.exit("FAIL: active.queried_fraction not populated")
rounds = m["timers"].get("active.round_seconds", {"count": 0})["count"]
if rounds != g["active.rounds"]:
    sys.exit("FAIL: active.round_seconds count disagrees with rounds")
with open(sys.argv[2]) as f:
    t = json.load(f)
if t != {"answers": [{"rep": "clean()", "role": "sanitizer",
                      "truth": True}]}:
    sys.exit(f"FAIL: unexpected replay transcript: {t}")
print(f"OK: active run queried {c['active.queries']} candidate(s) over "
      f"2 rounds, pinned clean() as a sanitizer, transcript replayable")
EOF

echo
echo "=== fault smoke: SELDON_FAULT=parse:0 degrades but matches survivors ==="
mkdir -p "$SMOKE/p1" "$SMOKE/p2"
cp "$SMOKE/app.py" "$SMOKE/p1/app.py"
cp "$SMOKE/app.py" "$SMOKE/p2/app.py"
RC=0
SELDON_FAULT=parse:0 "$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 \
  --jobs 2 --metrics-out "$SMOKE/fault-metrics.json" \
  --out "$SMOKE/degraded.spec" "$SMOKE/p1" "$SMOKE/p2" || RC=$?
if [ "$RC" -ne 2 ]; then
  echo "FAIL: fault-injected run exited $RC, expected degraded exit code 2"
  exit 1
fi
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --out "$SMOKE/survivor.spec" "$SMOKE/p2"
cmp "$SMOKE/degraded.spec" "$SMOKE/survivor.spec" \
  || { echo "FAIL: degraded spec differs from the survivors-only run"; exit 1; }
python3 - "$SMOKE/fault-metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
if m["counters"].get("health.quarantined", 0) != 1:
    sys.exit("FAIL: expected exactly one quarantined project, got "
             f"{m['counters'].get('health.quarantined', 0)}")
if m["gauges"].get("health.status") != 1:
    sys.exit("FAIL: health.status gauge is not Degraded (1): "
             f"{m['gauges'].get('health.status')}")
if m["gauges"].get("health.deadline_expired") != 0:
    sys.exit("FAIL: deadline flagged on a fault-only run")
if m["gauges"].get("health.fault_trips", 0) < 1:
    sys.exit("FAIL: fault registry recorded no trips")
print("OK: parse fault quarantined one project, exit code 2, health.* "
      "metrics populated, spec byte-identical to the survivors-only run")
EOF

echo
echo "=== daemon smoke: seldond --once vs a cold seldon explain ==="
# Cold reference: one-shot CLI query on the same corpus and settings.
"$ROOT/build/tools/seldon" explain --json --rep 'flask.escape()' \
  --role sanitizer --cutoff 1 --iters 200 "$SMOKE" > "$SMOKE/cold.json"
cat > "$SMOKE/requests.txt" <<'REQ'
{"v":1,"id":1,"op":"status"}
{"v":1,"id":2,"op":"query","rep":"flask.escape()","role":"sanitizer"}
{"v":1,"id":3,"op":"query","rep":"flask.escape()","role":"sanitizer"}
{"v":1,"id":4,"op":"learn","iters":200,"warm":true}
{"v":1,"id":5,"op":"status"}
{"v":1,"id":6,"op":"shutdown"}
REQ
"$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 "$SMOKE" \
  < "$SMOKE/requests.txt" > "$SMOKE/responses.txt" 2> "$SMOKE/seldond.log"
python3 - "$SMOKE/responses.txt" "$SMOKE/cold.json" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
cold = open(sys.argv[2]).read().rstrip("\n")
if len(lines) != 6:
    sys.exit(f"FAIL: expected 6 response lines, got {len(lines)}")
for n, line in enumerate(lines, 1):
    r = json.loads(line)
    if r.get("v") != 1 or r.get("id") != n or r.get("ok") is not True:
        sys.exit(f"FAIL: bad envelope on line {n}: {line[:120]}")
    # The envelope emits `result` last, so byte splicing must work.
    if not line.startswith(f'{{"v":1,"id":{n},"ok":true,"result":'):
        sys.exit(f"FAIL: envelope key order broken on line {n}")
def result_bytes(line):
    return line.split('"result":', 1)[1][:-1]
# Warm daemon answers == cold CLI run, byte for byte; and the repeated
# query is byte-identical (nothing recomputed differently).
q2, q3 = result_bytes(lines[1]), result_bytes(lines[2])
if q2 != cold:
    sys.exit(f"FAIL: warm query differs from cold explain --json:\n"
             f"  daemon: {q2[:200]}\n  cli:    {cold[:200]}")
if q3 != q2:
    sys.exit("FAIL: second identical query returned different bytes")
# No re-parse: parse.files must not move across queries and a learn,
# and must equal the corpus file count from the initial status.
s1, s5 = json.loads(result_bytes(lines[0])), json.loads(result_bytes(lines[4]))
files = s1["corpus"]["files"]
p1, p5 = s1["metrics"]["parse_files"], s5["metrics"]["parse_files"]
if p1 != files:
    sys.exit(f"FAIL: initial parse_files {p1} != corpus files {files}")
if p5 != p1:
    sys.exit(f"FAIL: parse_files moved {p1} -> {p5}: the daemon re-parsed")
if not json.loads(result_bytes(lines[3])).get("converged", False):
    sys.exit("FAIL: warm learn did not converge")
if json.loads(result_bytes(lines[5])) != {"stopping": True}:
    sys.exit("FAIL: shutdown did not acknowledge")
print(f"OK: warm daemon == cold CLI byte-for-byte, {files} file(s) "
      "parsed exactly once across queries and a learn")
EOF

# Warm restart through the graph cache: the second daemon start must
# serve every project graph from the cache (sources are still read once —
# they feed the content-hashed cache key — but no graph is rebuilt).
"$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 \
  --cache-dir "$SMOKE/dcache" "$SMOKE" \
  <<< '{"v":1,"id":1,"op":"shutdown"}' > /dev/null 2>&1
printf '%s\n' '{"v":1,"id":1,"op":"status"}' '{"v":1,"id":2,"op":"shutdown"}' |
  "$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 \
    --cache-dir "$SMOKE/dcache" "$SMOKE" > "$SMOKE/restart.txt" 2>/dev/null
python3 - "$SMOKE/restart.txt" <<'EOF'
import json, sys
status = json.loads(
    open(sys.argv[1]).read().splitlines()[0].split('"result":', 1)[1][:-1])
cache = status["cache"]
if not cache["enabled"] or cache["hits"] < 1 or cache["misses"] != 0:
    sys.exit(f"FAIL: warm daemon restart did not hit the cache: {cache}")
if status["metrics"]["parse_files"] != status["corpus"]["files"]:
    sys.exit("FAIL: restart parse_files "
             f"{status['metrics']['parse_files']} != corpus files "
             f"{status['corpus']['files']}")
print(f"OK: daemon restart served {cache['hits']} project(s) from the "
      "graph cache, no graphs rebuilt")
EOF

echo
echo "=== crash-recovery smoke: kill seldond mid-op, restart, compare ==="
# Reference: the served answer after an acknowledged feedback op.
QUERY='{"v":1,"id":7,"op":"query","rep":"flask.escape()","role":"sanitizer"}'
FEEDBACK='{"v":1,"id":6,"op":"feedback","iters":200,"accept":[{"rep":"flask.escape()","role":"sanitizer"}]}'
printf '%s\n%s\n' "$FEEDBACK" "$QUERY" |
  "$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 \
    --state-dir "$SMOKE/dstate-ref" "$SMOKE" 2>/dev/null |
  tail -1 > "$SMOKE/crash-ref.json"
# Arm a crash after the journal fsync: the daemon dies mid-op (exit 86)
# before answering, leaving the op only in the write-ahead journal.
RC=0
printf '%s\n%s\n' "$FEEDBACK" "$QUERY" |
  SELDON_FAULT=crash:journal-synced:1 \
  "$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 \
    --state-dir "$SMOKE/dstate" "$SMOKE" \
    > "$SMOKE/crash-out.txt" 2> "$SMOKE/crash-err.txt" || RC=$?
if [ "$RC" -ne 86 ]; then
  echo "FAIL: armed crash point exited $RC, expected 86"
  exit 1
fi
if [ -s "$SMOKE/crash-out.txt" ]; then
  echo "FAIL: crashed daemon answered before the injected crash"
  exit 1
fi
# Restart on the same state dir: replay re-executes the journaled op and
# the served answer matches the never-crashed reference byte for byte.
printf '%s\n' "$QUERY" |
  "$ROOT/build/tools/seldond" --once --cutoff 1 --iters 200 \
    --state-dir "$SMOKE/dstate" "$SMOKE" 2>/dev/null |
  tail -1 > "$SMOKE/crash-recovered.json"
cmp "$SMOKE/crash-ref.json" "$SMOKE/crash-recovered.json" \
  || { echo "FAIL: recovered answer differs from the reference"; exit 1; }
echo "OK: daemon killed at the journal boundary, restart replayed the op,"
echo "    served answer byte-identical to a never-crashed run"

echo
echo "all checks passed"
