//===- tests/metrics_test.cpp - Metrics registry + trace spans ------------===//
//
// Covers the observability layer's contract: thread-safe updates under the
// ThreadPool, handle stability, series self-decimation, near-zero (and
// allocation-free) disabled paths, JSON snapshot shape, span nesting, and
// the hard guarantee that enabling metrics never changes pipeline output.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include "corpus/CorpusGenerator.h"
#include "infer/Pipeline.h"
#include "spec/SpecIO.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

using namespace seldon;
using namespace seldon::metrics;

// Counts every global allocation so tests can assert that disabled-mode
// metric updates allocate nothing.
static std::atomic<uint64_t> AllocCount{0};

void *operator new(size_t Size) {
  AllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

TEST(MetricsTest, CounterGaugeTimerBasics) {
  Registry Reg;
  Reg.counter("c").add();
  Reg.counter("c").add(41);
  EXPECT_EQ(Reg.counter("c").value(), 42u);

  Reg.gauge("g").set(2.5);
  Reg.gauge("g").set(3.5);
  EXPECT_DOUBLE_EQ(Reg.gauge("g").value(), 3.5);

  TimerStat &T = Reg.timer("t");
  EXPECT_EQ(T.count(), 0u);
  EXPECT_DOUBLE_EQ(T.minSeconds(), 0.0);
  T.record(0.25);
  T.record(0.75);
  T.record(0.5);
  EXPECT_EQ(T.count(), 3u);
  EXPECT_DOUBLE_EQ(T.totalSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(T.meanSeconds(), 0.5);
  EXPECT_DOUBLE_EQ(T.minSeconds(), 0.25);
  EXPECT_DOUBLE_EQ(T.maxSeconds(), 0.75);
}

TEST(MetricsTest, HandlesAreStable) {
  Registry Reg;
  Counter &A = Reg.counter("x");
  Counter &B = Reg.counter("x");
  EXPECT_EQ(&A, &B);
  EXPECT_NE(&A, &Reg.counter("y"));
  Series &S1 = Reg.series("s", 16);
  Series &S2 = Reg.series("s", 999); // Capacity only applies on creation.
  EXPECT_EQ(&S1, &S2);
}

TEST(MetricsTest, DisabledRegistryIgnoresUpdates) {
  Registry Reg(/*StartEnabled=*/false);
  Counter &C = Reg.counter("c");
  TimerStat &T = Reg.timer("t");
  Series &S = Reg.series("s");
  C.add(7);
  T.record(1.0);
  S.record(1.0);
  Reg.gauge("g").set(5.0);
  Reg.recordSpan("span", 0.0, 1.0);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(T.count(), 0u);
  EXPECT_EQ(S.total(), 0u);
  EXPECT_DOUBLE_EQ(Reg.gauge("g").value(), 0.0);
  // recordSpan is unconditional (trace::Span gates on enabled() itself).
  EXPECT_EQ(Reg.spans().size(), 1u);

  Reg.setEnabled(true);
  C.add(7);
  EXPECT_EQ(C.value(), 7u);
}

TEST(MetricsTest, DisabledUpdatesDoNotAllocate) {
  Registry Reg(/*StartEnabled=*/false);
  // Handles interned up front — the hot-path pattern.
  Counter &C = Reg.counter("c");
  Gauge &G = Reg.gauge("g");
  TimerStat &T = Reg.timer("t");
  Series &S = Reg.series("s");

  uint64_t Before = AllocCount.load();
  for (int I = 0; I < 1000; ++I) {
    C.add();
    G.set(1.0);
    T.record(0.5);
    S.record(0.5);
  }
  EXPECT_EQ(AllocCount.load(), Before)
      << "disabled-mode metric updates must not allocate";
}

TEST(MetricsTest, ConcurrentUpdatesUnderThreadPool) {
  Registry Reg;
  Counter &C = Reg.counter("c");
  TimerStat &T = Reg.timer("t");
  Series &S = Reg.series("s", 64);

  ThreadPool Pool(4);
  constexpr size_t Tasks = 64;
  constexpr int PerTask = 500;
  Pool.parallelFor(Tasks, [&](size_t, unsigned) {
    for (int I = 0; I < PerTask; ++I) {
      C.add();
      T.record(0.001);
      S.record(static_cast<double>(I));
    }
  });

  EXPECT_EQ(C.value(), Tasks * PerTask);
  EXPECT_EQ(T.count(), Tasks * PerTask);
  EXPECT_DOUBLE_EQ(T.minSeconds(), 0.001);
  EXPECT_DOUBLE_EQ(T.maxSeconds(), 0.001);
  EXPECT_EQ(S.total(), static_cast<uint64_t>(Tasks * PerTask));
  EXPECT_LE(S.samples().size(), 64u);
}

TEST(MetricsTest, ConcurrentInterningIsSafe) {
  Registry Reg;
  ThreadPool Pool(4);
  Pool.parallelFor(100, [&](size_t I, unsigned) {
    Reg.counter("shared").add();
    Reg.counter("c" + std::to_string(I % 10)).add();
  });
  EXPECT_EQ(Reg.counter("shared").value(), 100u);
  uint64_t Sum = 0;
  for (int I = 0; I < 10; ++I)
    Sum += Reg.counter("c" + std::to_string(I)).value();
  EXPECT_EQ(Sum, 100u);
}

TEST(MetricsTest, SeriesDecimationKeepsUniformSubsample) {
  Registry Reg;
  Series &S = Reg.series("s", 8);
  constexpr int N = 1000;
  for (int I = 0; I < N; ++I)
    S.record(static_cast<double>(I));

  EXPECT_EQ(S.total(), static_cast<uint64_t>(N));
  std::vector<double> Samples = S.samples();
  EXPECT_LE(Samples.size(), 8u);
  EXPECT_GE(Samples.size(), 2u);
  uint64_t Stride = S.stride();
  // Stride doubles from 1: always a power of two.
  EXPECT_EQ(Stride & (Stride - 1), 0u);
  // Stored samples are exactly the values recorded at multiples of the
  // stride — a uniformly spaced subsample of the full sequence.
  for (size_t I = 0; I < Samples.size(); ++I)
    EXPECT_DOUBLE_EQ(Samples[I], static_cast<double>(I * Stride));
}

TEST(MetricsTest, ResetZeroesButKeepsHandles) {
  Registry Reg;
  Counter &C = Reg.counter("c");
  C.add(5);
  Reg.timer("t").record(1.0);
  Reg.series("s").record(1.0);
  Reg.recordSpan("x", 0.0, 1.0);
  Reg.reset();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(&C, &Reg.counter("c"));
  EXPECT_EQ(Reg.timer("t").count(), 0u);
  EXPECT_EQ(Reg.series("s").total(), 0u);
  EXPECT_TRUE(Reg.spans().empty());
}

TEST(MetricsTest, JsonSnapshotShape) {
  Registry Reg;
  Reg.counter("files").add(12);
  Reg.gauge("rows").set(34.5);
  Reg.timer("parse").record(0.5);
  Reg.series("obj", 8).record(1.25);
  Reg.recordSpan("session/solve", 0.5, 2.0);

  std::string Json = Reg.toJson();
  EXPECT_NE(Json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"files\": 12"), std::string::npos);
  EXPECT_NE(Json.find("\"rows\": 34.5"), std::string::npos);
  EXPECT_NE(Json.find("\"parse\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"total_seconds\": 0.5"), std::string::npos);
  EXPECT_NE(Json.find("\"samples\": [1.25]"), std::string::npos);
  EXPECT_NE(Json.find("\"path\": \"session/solve\""), std::string::npos);
  EXPECT_NE(Json.find("\"duration_seconds\": 2"), std::string::npos);
  // Balanced braces/brackets — a cheap structural validity check (no
  // string values contain braces here).
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST(MetricsTest, JsonEscapesNames) {
  Registry Reg;
  Reg.counter("we\"ird\\name").add();
  std::string Json = Reg.toJson();
  EXPECT_NE(Json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(MetricsTest, RenderTextListsEveryKind) {
  Registry Reg;
  Reg.counter("parse.files").add(3);
  Reg.gauge("gen.vars").set(7);
  Reg.timer("parse.file_seconds").record(0.25);
  Reg.series("solve.objective").record(0.5);
  Reg.recordSpan("session/parse", 0.0, 1.0);
  std::string Text = Reg.renderText();
  EXPECT_NE(Text.find("parse.files"), std::string::npos);
  EXPECT_NE(Text.find("gen.vars"), std::string::npos);
  EXPECT_NE(Text.find("parse.file_seconds"), std::string::npos);
  EXPECT_NE(Text.find("solve.objective"), std::string::npos);
  EXPECT_NE(Text.find("session/parse"), std::string::npos);
  // Empty kinds are omitted entirely.
  Registry Empty;
  EXPECT_TRUE(Empty.renderText().empty());
}

TEST(TraceTest, SpansNestPerThread) {
  Registry Reg;
  {
    trace::Span Outer(Reg, "session");
    trace::Span Inner(Reg, "solve");
    Inner.finish();
    trace::Span Second(Reg, "report");
  }
  std::vector<SpanRecord> Spans = Reg.spans();
  ASSERT_EQ(Spans.size(), 3u);
  // Recorded in finish order: children before their parent.
  EXPECT_EQ(Spans[0].Path, "session/solve");
  EXPECT_EQ(Spans[1].Path, "session/report");
  EXPECT_EQ(Spans[2].Path, "session");
  EXPECT_GE(Spans[2].DurationSeconds, Spans[0].DurationSeconds);
}

TEST(TraceTest, SpanTimesEvenWhenRegistryDisabled) {
  Registry Reg(/*StartEnabled=*/false);
  trace::Span S(Reg, "stage");
  double D = S.finish();
  EXPECT_GE(D, 0.0);
  EXPECT_DOUBLE_EQ(S.seconds(), D);
  EXPECT_TRUE(Reg.spans().empty()) << "disabled registry records no spans";
  EXPECT_DOUBLE_EQ(S.finish(), D) << "finish() is idempotent";
}

TEST(TraceTest, SpansOnPoolWorkersDoNotInheritForeignParents) {
  Registry Reg;
  {
    trace::Span Outer(Reg, "outer");
    ThreadPool Pool(2);
    Pool.parallelFor(4, [&](size_t I, unsigned) {
      trace::Span Worker(Reg, "task" + std::to_string(I));
    });
  }
  std::set<std::string> Paths;
  for (const SpanRecord &S : Reg.spans())
    Paths.insert(S.Path);
  // Worker threads have no open parent span, so tasks are roots.
  EXPECT_TRUE(Paths.count("task0")) << "worker span must not nest";
  EXPECT_TRUE(Paths.count("outer"));
}

TEST(MetricsTest, GlobalRegistryStartsDisabled) {
  // Other tests may enable it; this only checks the handle is process-wide
  // and stable.
  Registry &A = Registry::global();
  Registry &B = Registry::global();
  EXPECT_EQ(&A, &B);
}

// The acceptance guarantee of the whole layer: enabling metrics changes no
// pipeline output, at Jobs=1 and Jobs=4.
TEST(MetricsPipelineTest, EnabledMetricsKeepLearnedSpecByteIdentical) {
  corpus::CorpusOptions CorpusOpts;
  CorpusOpts.NumProjects = 12;
  CorpusOpts.Seed = 11;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  auto Learn = [&](unsigned Jobs) {
    infer::PipelineOptions Opts;
    Opts.Solve.MaxIterations = 200;
    Opts.Jobs = Jobs;
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    return spec::writeLearnedSpec(S.solve().Learned);
  };

  Registry &Reg = Registry::global();
  bool WasEnabled = Reg.enabled();
  Reg.setEnabled(false);
  std::string OffSerial = Learn(1);
  std::string OffParallel = Learn(4);
  Reg.setEnabled(true);
  std::string OnSerial = Learn(1);
  std::string OnParallel = Learn(4);
  Reg.setEnabled(WasEnabled);

  EXPECT_EQ(OffSerial, OnSerial);
  EXPECT_EQ(OffParallel, OnParallel);
  EXPECT_EQ(OffSerial, OffParallel);

  // And the instrumented run actually produced telemetry.
  EXPECT_GT(Reg.counter("solve.iterations").value(), 0u);
  EXPECT_GT(Reg.series("solve.objective").total(), 0u);
  bool SawSolveSpan = false;
  for (const SpanRecord &S : Reg.spans())
    SawSolveSpan |= S.Path == "session/solve";
  EXPECT_TRUE(SawSolveSpan);
}

} // namespace
