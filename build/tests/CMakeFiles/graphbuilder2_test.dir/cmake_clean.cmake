file(REMOVE_RECURSE
  "CMakeFiles/graphbuilder2_test.dir/graphbuilder2_test.cpp.o"
  "CMakeFiles/graphbuilder2_test.dir/graphbuilder2_test.cpp.o.d"
  "graphbuilder2_test"
  "graphbuilder2_test.pdb"
  "graphbuilder2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphbuilder2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
