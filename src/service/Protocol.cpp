//===- service/Protocol.cpp - Versioned request/response framing ----------===//

#include "service/Protocol.h"

#include "support/StrUtil.h"

#include <cmath>

using namespace seldon;
using namespace seldon::service;

const char *seldon::service::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::BadJson:
    return "bad-json";
  case ErrorCode::BadRequest:
    return "bad-request";
  case ErrorCode::UnsupportedVersion:
    return "unsupported-version";
  case ErrorCode::UnknownOp:
    return "unknown-op";
  case ErrorCode::Oversized:
    return "oversized";
  case ErrorCode::Overloaded:
    return "overloaded";
  case ErrorCode::Deadline:
    return "deadline";
  case ErrorCode::Internal:
    return "internal";
  case ErrorCode::ShuttingDown:
    return "shutting-down";
  }
  return "internal";
}

bool seldon::service::parseRequest(const std::string &Line, size_t MaxBytes,
                                   Request &Out, RequestError &Err) {
  Out = Request();
  if (Line.size() > MaxBytes) {
    Err.Code = ErrorCode::Oversized;
    Err.Message = formatString("request line is %zu bytes; the limit is %zu",
                               Line.size(), MaxBytes);
    return false;
  }
  std::string ParseError;
  if (!parseJson(Line, Out.Params, ParseError)) {
    Err.Code = ErrorCode::BadJson;
    Err.Message = ParseError;
    return false;
  }
  if (!Out.Params.isObject()) {
    Err.Code = ErrorCode::BadRequest;
    Err.Message = "request must be a JSON object";
    return false;
  }
  // The id is salvaged first so every later failure can still echo it.
  // Only scalar ids are accepted; a composite id is a malformed request.
  if (const JsonValue *Id = Out.Params.get("id")) {
    if (Id->isArray() || Id->isObject()) {
      Err.Code = ErrorCode::BadRequest;
      Err.Message = "\"id\" must be a string, number, bool, or null";
      return false;
    }
    Out.Id = *Id;
  }
  const JsonValue *V = Out.Params.get("v");
  if (!V || !V->isNumber() ||
      std::floor(V->numberValue()) != V->numberValue()) {
    Err.Code = ErrorCode::BadRequest;
    Err.Message = "missing or non-integer \"v\" field";
    return false;
  }
  Out.Version = static_cast<int>(V->numberValue());
  if (Out.Version != ProtocolVersion) {
    Err.Code = ErrorCode::UnsupportedVersion;
    Err.Message = formatString(
        "this server speaks protocol version %d; request carried %d",
        ProtocolVersion, Out.Version);
    return false;
  }
  const JsonValue *Op = Out.Params.get("op");
  if (!Op || !Op->isString() || Op->stringValue().empty()) {
    Err.Code = ErrorCode::BadRequest;
    Err.Message = "missing or non-string \"op\" field";
    return false;
  }
  Out.Op = Op->stringValue();
  return true;
}

std::string seldon::service::renderOkResponse(const JsonValue &Id,
                                              const std::string &ResultJson) {
  // Envelope keys in fixed order; `result` last so byte-oriented consumers
  // can splice the payload off the end of the line.
  return formatString("{\"v\":%d,\"id\":%s,\"ok\":true,\"result\":%s}",
                      ProtocolVersion, Id.render().c_str(),
                      ResultJson.c_str());
}

std::string seldon::service::renderErrorResponse(const JsonValue &Id,
                                                 ErrorCode Code,
                                                 const std::string &Message) {
  return formatString(
      "{\"v\":%d,\"id\":%s,\"ok\":false,\"error\":{\"code\":\"%s\","
      "\"message\":\"%s\"}}",
      ProtocolVersion, Id.render().c_str(), errorCodeName(Code),
      jsonEscape(Message).c_str());
}
