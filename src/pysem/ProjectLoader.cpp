//===- pysem/ProjectLoader.cpp - Load projects from disk ------------------===//

#include "pysem/ProjectLoader.h"

#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace fs = std::filesystem;

using namespace seldon;
using namespace seldon::pysem;

std::optional<std::string> seldon::pysem::readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  if (In.bad())
    return std::nullopt;
  return Buffer.str();
}

std::optional<Project>
seldon::pysem::loadProjectFromDir(const std::string &RootDir,
                                  const LoadOptions &Opts,
                                  std::vector<std::string> *ErrorsOut) {
  std::error_code Ec;
  fs::path Root(RootDir);
  if (!fs::is_directory(Root, Ec))
    return std::nullopt;

  std::string Name = Root.filename().string();
  if (Name.empty())
    Name = Root.parent_path().filename().string();
  if (Name.empty())
    Name = "project";
  Project Proj(Name);

  // Collect paths first and sort them so module order (and therefore event
  // ids) is deterministic across filesystems.
  std::vector<fs::path> Files;
  fs::recursive_directory_iterator It(
      Root, fs::directory_options::skip_permission_denied, Ec);
  fs::recursive_directory_iterator End;
  for (; It != End; It.increment(Ec)) {
    if (Ec) {
      Ec.clear();
      continue;
    }
    const fs::directory_entry &Entry = *It;
    if (Entry.is_directory(Ec)) {
      std::string Dir = Entry.path().filename().string();
      if (std::find(Opts.SkipDirs.begin(), Opts.SkipDirs.end(), Dir) !=
          Opts.SkipDirs.end())
        It.disable_recursion_pending();
      continue;
    }
    if (!Entry.is_regular_file(Ec) || Entry.path().extension() != ".py")
      continue;
    if (Opts.MaxFileBytes > 0 && Entry.file_size(Ec) > Opts.MaxFileBytes)
      continue;
    Files.push_back(Entry.path());
  }
  std::sort(Files.begin(), Files.end());

  // Per-file handles hoisted out of the loop; loadProjectFromDir runs on
  // pool workers under parallel corpus loading, and both metrics are safe
  // for concurrent record()/add().
  metrics::Registry &Reg = metrics::Registry::global();
  metrics::TimerStat *FileTimer =
      Reg.enabled() ? &Reg.timer("parse.file_seconds") : nullptr;
  metrics::Counter *FileCount =
      Reg.enabled() ? &Reg.counter("parse.files") : nullptr;
  for (const fs::path &File : Files) {
    Timer FileClock;
    std::optional<std::string> Source = readFile(File.string());
    if (!Source) {
      if (ErrorsOut)
        ErrorsOut->push_back("failed to read " + File.string());
      continue;
    }
    std::string Relative = fs::relative(File, Root, Ec).generic_string();
    if (Ec || Relative.empty())
      Relative = File.filename().string();
    Proj.addModule(std::move(Relative), *Source);
    if (FileTimer) {
      FileTimer->record(FileClock.seconds());
      FileCount->add();
    }
  }
  return Proj;
}

std::vector<std::optional<Project>> seldon::pysem::loadProjectsFromDirs(
    const std::vector<std::string> &RootDirs, const LoadOptions &Opts,
    unsigned Jobs, std::vector<std::vector<std::string>> *ErrorsOut) {
  std::vector<std::optional<Project>> Out(RootDirs.size());
  if (ErrorsOut) {
    ErrorsOut->clear();
    ErrorsOut->resize(RootDirs.size());
  }
  auto LoadOne = [&](size_t I, unsigned) {
    Out[I] = loadProjectFromDir(RootDirs[I], Opts,
                                ErrorsOut ? &(*ErrorsOut)[I] : nullptr);
  };
  if (Jobs == 0)
    Jobs = ThreadPool::hardwareConcurrency();
  if (Jobs <= 1 || RootDirs.size() <= 1) {
    for (size_t I = 0; I < RootDirs.size(); ++I)
      LoadOne(I, 0);
    return Out;
  }
  ThreadPool Pool(static_cast<unsigned>(std::min<size_t>(Jobs, RootDirs.size())));
  Pool.parallelFor(RootDirs.size(), LoadOne);
  return Out;
}
