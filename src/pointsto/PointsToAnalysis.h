//===- pointsto/PointsToAnalysis.h - AST-driven points-to --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the Andersen solver over a parsed Python module (paper §5.2):
///
///  * every call with an unknown body is an allocation site;
///  * list/dict/tuple/set displays are allocation sites;
///  * assignments generate copy constraints;
///  * attribute stores/loads generate field store/load constraints;
///  * loops are treated as a single iteration (constraints are generated
///    once; the solver's fixed point supplies the closure);
///  * control flow is ignored (flow-insensitive constraint collection is a
///    sound over-approximation of the builder's flow-sensitive use).
///
/// Variables are scoped as "<function>::<name>" (module level uses "").
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_POINTSTO_POINTSTOANALYSIS_H
#define SELDON_POINTSTO_POINTSTOANALYSIS_H

#include "pointsto/AndersenSolver.h"
#include "pyast/Ast.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace seldon {
namespace pointsto {

/// Facade tying the Andersen solver to a module AST.
class PointsToAnalysis {
public:
  /// Collects constraints from \p Module and solves them.
  void run(const pyast::ModuleNode *Module);

  /// Id of the scoped variable "<scope>::<name>", if it was ever assigned.
  std::optional<VarId> lookupVar(const std::string &Scope,
                                 const std::string &Name) const;

  /// True if the two scoped variables may point to the same object.
  bool mayAlias(const std::string &ScopeA, const std::string &NameA,
                const std::string &ScopeB, const std::string &NameB) const;

  const AndersenSolver &solver() const { return Solver; }

private:
  VarId varFor(const std::string &Scope, const std::string &Name);
  /// Evaluates \p E to a solver variable holding its possible objects.
  VarId evalExpr(const std::string &Scope, const pyast::Expr *E);
  void runStmts(const std::string &Scope,
                const std::vector<pyast::Stmt *> &Body);
  void assignTo(const std::string &Scope, const pyast::Expr *Target,
                VarId Value);

  AndersenSolver Solver;
  std::unordered_map<std::string, VarId> VarIds;
  unsigned TempCount = 0;
};

} // namespace pointsto
} // namespace seldon

#endif // SELDON_POINTSTO_POINTSTOANALYSIS_H
