file(REMOVE_RECURSE
  "CMakeFiles/seldon_pyast.dir/pyast/Ast.cpp.o"
  "CMakeFiles/seldon_pyast.dir/pyast/Ast.cpp.o.d"
  "CMakeFiles/seldon_pyast.dir/pyast/AstPrinter.cpp.o"
  "CMakeFiles/seldon_pyast.dir/pyast/AstPrinter.cpp.o.d"
  "CMakeFiles/seldon_pyast.dir/pyast/Lexer.cpp.o"
  "CMakeFiles/seldon_pyast.dir/pyast/Lexer.cpp.o.d"
  "CMakeFiles/seldon_pyast.dir/pyast/Parser.cpp.o"
  "CMakeFiles/seldon_pyast.dir/pyast/Parser.cpp.o.d"
  "CMakeFiles/seldon_pyast.dir/pyast/Token.cpp.o"
  "CMakeFiles/seldon_pyast.dir/pyast/Token.cpp.o.d"
  "libseldon_pyast.a"
  "libseldon_pyast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_pyast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
