//===- constraints/ConstraintGen.cpp - Fig. 4 constraint extraction -------===//

#include "constraints/ConstraintGen.h"

#include "support/Deadline.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace seldon;
using namespace seldon::constraints;
using namespace seldon::propgraph;

namespace {

/// Per-file constraint extraction context. Reachability queries stay inside
/// one file because per-file subgraphs are edge-disjoint. Reads the shared
/// backoff options but interns variables into its own local table and
/// writes only its own Out buffer, so one extractor per file can run
/// concurrently with no shared mutable state. Constraints come back with
/// file-local variable ids; the caller replays each local table into the
/// global one (in file order) and remaps, which reproduces the exact id
/// assignment of a serial run.
class FileExtractor {
public:
  FileExtractor(const PropagationGraph &Graph,
                const std::vector<std::vector<RepId>> &EventReps,
                const GenOptions &Opts, const std::vector<EventId> &Local,
                VarTable &LocalVars,
                std::vector<solver::LinearConstraint> &Out)
      : Graph(Graph), EventReps(EventReps), Opts(Opts), Local(Local),
        LocalVars(LocalVars), Out(Out) {}

  void run() {
    // Collect the file's candidates per role (events with surviving reps).
    for (EventId Id : Local) {
      if (EventReps[Id].empty())
        continue;
      RoleMask Mask = Graph.event(Id).Candidates;
      if (maskHas(Mask, Role::Source))
        Sources.push_back(Id);
      if (maskHas(Mask, Role::Sanitizer))
        Sanitizers.push_back(Id);
      if (maskHas(Mask, Role::Sink))
        Sinks.push_back(Id);
    }
    extractSanitizerAnchored();
    extractSourceSinkPairs();
  }

private:
  /// Fig. 4a and Fig. 4b share the per-sanitizer forward/backward scans.
  void extractSanitizerAnchored() {
    for (EventId San : Sanitizers) {
      const std::unordered_set<EventId> &Fwd = forwardSet(San);
      std::unordered_set<EventId> Bwd = backwardSet(San);

      std::vector<EventId> SinksAfter = membersOf(Sinks, Fwd);
      std::vector<EventId> SourcesBefore = membersOf(Sources, Bwd);
      if (SinksAfter.empty() && SourcesBefore.empty())
        continue;

      // Fig. 4a: san(v) + snk(t) <= sum of sources into v + C.
      std::vector<solver::Term> SourceSum = sumTerms(SourcesBefore,
                                                     Role::Source);
      size_t Pairs = 0;
      for (EventId Snk : SinksAfter) {
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        appendAvgTerms(LC.Lhs, San, Role::Sanitizer);
        appendAvgTerms(LC.Lhs, Snk, Role::Sink);
        LC.Rhs = SourceSum;
        LC.C = Opts.C;
        Out.push_back(std::move(LC));
      }

      // Fig. 4b: src(s) + san(v) <= sum of sinks after v + C.
      std::vector<solver::Term> SinkSum = sumTerms(SinksAfter, Role::Sink);
      Pairs = 0;
      for (EventId Src : SourcesBefore) {
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        appendAvgTerms(LC.Lhs, Src, Role::Source);
        appendAvgTerms(LC.Lhs, San, Role::Sanitizer);
        LC.Rhs = SinkSum;
        LC.C = Opts.C;
        Out.push_back(std::move(LC));
      }
    }
  }

  /// Fig. 4c: src(s) + snk(t) <= sum of sanitizers between s and t + C.
  void extractSourceSinkPairs() {
    for (EventId Src : Sources) {
      const std::unordered_set<EventId> &Fwd = forwardSet(Src);
      std::vector<EventId> SinksAfter = membersOf(Sinks, Fwd);
      std::vector<EventId> SansAfter = membersOf(Sanitizers, Fwd);
      size_t Pairs = 0;
      for (EventId Snk : SinksAfter) {
        if (Snk == Src)
          continue;
        if (++Pairs > Opts.MaxPairsPerAnchor)
          break;
        solver::LinearConstraint LC;
        appendAvgTerms(LC.Lhs, Src, Role::Source);
        appendAvgTerms(LC.Lhs, Snk, Role::Sink);
        for (EventId Mid : SansAfter) {
          if (Mid == Snk || Mid == Src)
            continue;
          if (forwardSet(Mid).count(Snk))
            appendAvgTerms(LC.Rhs, Mid, Role::Sanitizer);
        }
        LC.C = Opts.C;
        Out.push_back(std::move(LC));
      }
    }
  }

  /// Sorted members of \p Candidates contained in \p Set.
  static std::vector<EventId>
  membersOf(const std::vector<EventId> &Candidates,
            const std::unordered_set<EventId> &Set) {
    std::vector<EventId> Out;
    for (EventId Id : Candidates)
      if (Set.count(Id))
        Out.push_back(Id);
    return Out;
  }

  const std::unordered_set<EventId> &forwardSet(EventId Id) {
    auto It = FwdCache.find(Id);
    if (It != FwdCache.end())
      return It->second;
    std::unordered_set<EventId> Set;
    for (EventId R : Graph.reachableFrom(Id))
      Set.insert(R);
    return FwdCache.emplace(Id, std::move(Set)).first->second;
  }

  std::unordered_set<EventId> backwardSet(EventId Id) const {
    std::unordered_set<EventId> Set;
    for (EventId R : Graph.reachingTo(Id))
      Set.insert(R);
    return Set;
  }

  /// Appends the backoff-averaged terms of (event, role) — paper §4.3:
  /// (1/|Reps(v)|) · Σ over the surviving options. Variables are interned
  /// into the file-local table in first-use order, mirroring the order a
  /// serial run would create them.
  void appendAvgTerms(std::vector<solver::Term> &Terms, EventId Id, Role R) {
    const std::vector<RepId> &Options = EventReps[Id];
    float Coef = 1.0f / static_cast<float>(Options.size());
    for (RepId Rep : Options)
      Terms.push_back({LocalVars.varFor(Rep, R), Coef});
  }

  std::vector<solver::Term> sumTerms(const std::vector<EventId> &Ids,
                                     Role R) {
    std::vector<solver::Term> Terms;
    for (EventId Id : Ids)
      appendAvgTerms(Terms, Id, R);
    return Terms;
  }

  const PropagationGraph &Graph;
  const std::vector<std::vector<RepId>> &EventReps;
  const GenOptions &Opts;
  const std::vector<EventId> &Local;
  VarTable &LocalVars;
  std::vector<solver::LinearConstraint> &Out;
  std::vector<EventId> Sources, Sanitizers, Sinks;
  std::unordered_map<EventId, std::unordered_set<EventId>> FwdCache;
};

} // namespace

ConstraintSystem
seldon::constraints::prepareSystem(const PropagationGraph &Graph,
                                   const RepTable &Reps,
                                   const spec::SeedSpec &Seed,
                                   const GenOptions &Opts, ThreadPool *Pool) {
  ConstraintSystem Sys;
  const std::vector<Event> &Events = Graph.events();
  Sys.EventReps.resize(Events.size());

  // Surviving backoff options: frequency cutoff (§4.3) + blacklist (§7.2).
  // Each event writes only its own slot, so the filter fans out freely.
  auto FilterEvent = [&](size_t I, unsigned) {
    const Event &E = Events[I];
    std::vector<RepId> Options = Reps.backoffOptions(E, Opts.RepCutoff);
    std::vector<RepId> Kept;
    for (RepId Id : Options)
      if (!Seed.isBlacklisted(Reps.repString(Id)))
        Kept.push_back(Id);
    Sys.EventReps[E.Id] = std::move(Kept);
  };
  if (Pool)
    Pool->parallelFor(Events.size(), FilterEvent);
  else
    for (size_t I = 0; I < Events.size(); ++I)
      FilterEvent(I, 0);

  size_t BackoffTotal = 0;
  for (const std::vector<RepId> &Kept : Sys.EventReps) {
    if (!Kept.empty()) {
      ++Sys.NumCandidates;
      BackoffTotal += Kept.size();
    }
  }
  Sys.AvgBackoffOptions =
      Sys.NumCandidates == 0
          ? 0.0
          : static_cast<double>(BackoffTotal) /
                static_cast<double>(Sys.NumCandidates);

  // Seed pins (§4.1): a labeled representation fixes all three of its role
  // variables (1 for held roles, 0 for the others).
  for (const auto &[RepStr, Mask] : Seed.Spec.entries()) {
    RepId Id;
    if (!Reps.lookup(RepStr, Id))
      continue; // Seed API never occurs in this corpus.
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
      VarId V = Sys.Vars.varFor(Id, R);
      Sys.Pinned.emplace_back(V, maskHas(Mask, R) ? 1.0 : 0.0);
    }
  }
  return Sys;
}

ConstraintSystem
seldon::constraints::generateConstraints(const PropagationGraph &Graph,
                                         const RepTable &Reps,
                                         const spec::SeedSpec &Seed,
                                         const GenOptions &Opts,
                                         ThreadPool *Pool,
                                         std::vector<double> *ShardSecondsOut,
                                         const Deadline *StopAt) {
  ConstraintSystem Sys = prepareSystem(Graph, Reps, Seed, Opts, Pool);
  const std::vector<Event> &Events = Graph.events();

  // Group events by file and extract per file into private buffers. Each
  // shard interns variables into its own local table, so extraction
  // touches no shared mutable state.
  std::vector<std::vector<EventId>> ByFile(Graph.files().size());
  for (const Event &E : Events)
    ByFile[E.FileIdx].push_back(E.Id);

  struct FileBlock {
    VarTable Vars;
    std::vector<solver::LinearConstraint> Constraints;
  };
  std::vector<FileBlock> PerFile(ByFile.size());
  unsigned Workers = Pool ? Pool->numWorkers() : 1;
  std::vector<double> ShardSeconds(Workers, 0.0);
  auto ExtractFile = [&](size_t F, unsigned Worker) {
    if (ByFile[F].empty())
      return;
    // Cooperative cancellation at the shard boundary: a truncated system
    // would silently change the learned scores, so expiry is a hard error
    // the caller contextualizes (parallelFor rethrows it deterministically).
    if (StopAt && StopAt->expired())
      throw DeadlineError("deadline expired during constraint generation");
    if (fault::enabled())
      fault::maybeThrow(fault::Point::ConstraintGen, F);
    Timer ShardTimer;
    FileExtractor Extractor(Graph, Sys.EventReps, Opts, ByFile[F],
                            PerFile[F].Vars, PerFile[F].Constraints);
    Extractor.run();
    ShardSeconds[Worker] += ShardTimer.seconds();
  };
  if (Pool)
    Pool->parallelFor(ByFile.size(), ExtractFile);
  else
    for (size_t F = 0; F < ByFile.size(); ++F)
      ExtractFile(F, 0);

  // Deterministic merge: walk shards in file order, replay each local
  // variable table into the global one (local ids are in first-use order,
  // so this reproduces the exact ids a serial run assigns — including
  // variables a serial run creates for sums that end up in no constraint),
  // then remap and concatenate the constraint blocks.
  size_t Total = 0;
  for (const FileBlock &Block : PerFile)
    Total += Block.Constraints.size();
  Sys.Constraints.reserve(Total);
  for (FileBlock &Block : PerFile) {
    std::vector<VarId> Map(Block.Vars.numVars());
    for (VarId L = 0; L < Block.Vars.numVars(); ++L)
      Map[L] = Sys.Vars.varFor(Block.Vars.repOf(L), Block.Vars.roleOf(L));
    for (solver::LinearConstraint &LC : Block.Constraints) {
      for (solver::Term &T : LC.Lhs)
        T.Var = Map[T.Var];
      for (solver::Term &T : LC.Rhs)
        T.Var = Map[T.Var];
      Sys.Constraints.push_back(std::move(LC));
    }
    Block = FileBlock(); // Free as we go.
  }

  if (ShardSecondsOut)
    *ShardSecondsOut = std::move(ShardSeconds);
  return Sys;
}
