file(REMOVE_RECURSE
  "libseldon_taint.a"
)
