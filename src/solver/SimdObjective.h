//===- solver/SimdObjective.h - Blocked SIMD solver kernel -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorized solver backend: a blocked, row-length-sorted re-layout of
/// the compiled CSR rows with explicit AVX2 value sweeps (runtime-dispatched,
/// with a bit-identical scalar fallback).
///
/// The layout vectorizes **across rows** (a SELL-C-style sliced format):
/// within each shard, rows are stably sorted by descending length and packed
/// into blocks of `Lanes` rows (fp64: 4 under AVX2, 8 under AVX-512;
/// fp32: 8 under AVX2, 16 under AVX-512). A block stores its
/// coefficients lane-interleaved — entry (j, lane) at `Off + j·Lanes + lane`
/// — so one vector load per j advances every lane's dot product by one term.
/// Short lanes are padded with (VarIdx 0, Coef 0.0) entries.
///
/// Why this is byte-identical to `CompiledObjective` in fp64 mode:
///
///  * Each lane accumulates **its own row's** terms in the original CSR
///    order, `Acc = Acc + Coef·X` per step. A vector add/mul rounds each
///    lane independently, exactly like the scalar loop — the accumulation
///    chain per row is the same sequence of IEEE operations. FMA is never
///    used (it would skip the intermediate rounding of the product).
///  * Padding appends `+ 0.0·X[0]` terms, which cannot change a finite
///    lane value (projection keeps X in [0, 1], so the product is +0.0 and
///    v + 0.0 == v for every finite v except -0.0 — and a row value of
///    ±0.0 is on the satisfied side of the `V <= 0` test either way).
///  * In fp64 mode the value pass also forms each row's weighted hinge
///    `H = Weight · max(V, 0)` — `max` then a separate multiply, the same
///    two IEEE operations the compiled row loop performs, rounded per
///    lane exactly like scalar code. `H > 0` iff `V > 0` (weights are
///    ≥ 1), so H alone drives the epilogue.
///  * The hinge total and the gradient scatter run in an epilogue over
///    the **original row order**, reading the per-row values the vector
///    pass stored. Under AVX-512 the violated rows are first compacted
///    with an order-preserving masked compress (`H > 0`, branch-free);
///    either way the total accumulates the same H values in the same
///    ascending-row sequence as the compiled kernel (skipping exact
///    zeros), and the scatter adds precomputed `Weight · Coef` products
///    (contiguous, original CSR order) — products formed with the same
///    scalar multiply the compiled kernel issues per term, hitting the
///    same variables in the same order, so the gradient is bit-identical.
///    Shard partitioning and shard-order reduction mirror
///    `CompiledObjective::sweep`, so every Jobs setting and every kernel
///    tier (AVX-512, AVX2, scalar) produce bit-identical results.
///
/// fp32 mode (`SimdPrecision::F32`) computes each row's dot product in
/// float (8 lanes) over float-converted X and coefficients, then switches
/// to double for everything downstream: the violation test, the weighted
/// hinge total, and the gradient scatter (which uses the precomputed
/// double `Weight · Coef` products, so gradient *entries* are exact —
/// only the set of violated rows and the hinge value carry fp32
/// rounding). Per-evaluation
/// values agree with the fp64 path to within standard float accuracy
/// (~1e-6 relative per row term); end to end the rounding perturbs the
/// optimizer trajectory, so the contract (docs/architecture.md, enforced
/// by bench/solver_kernel) is on role selection: it matches the compiled
/// backend except where the compiled score lies within a documented band
/// (±0.02) of the report threshold.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_SIMDOBJECTIVE_H
#define SELDON_SOLVER_SIMDOBJECTIVE_H

#include "solver/CompiledObjective.h"

#include <cstdint>
#include <vector>

namespace seldon {

class ThreadPool;

namespace solver {

/// Arithmetic mode of the blocked sweep.
enum class SimdPrecision {
  F64, ///< Double compute; byte-identical to CompiledObjective.
  F32, ///< Float compute, double accumulate (documented tolerance).
};

/// The relaxed objective of paper Eq. (9) evaluated by a blocked SIMD
/// kernel. Same interface and semantics as `CompiledObjective`; fp64 mode
/// is bit-identical to it on every input.
class SimdObjective {
public:
  SimdObjective(size_t NumVars,
                const std::vector<LinearConstraint> &Constraints,
                double Lambda,
                SimdPrecision Precision = SimdPrecision::F64);

  /// Compiles an existing legacy objective, copying its pins.
  static SimdObjective compile(const Objective &Obj,
                               SimdPrecision Precision = SimdPrecision::F64);

  /// Evaluates sweeps on \p Pool (one task per shard); null reverts to
  /// serial execution with identical arithmetic. The pool must outlive
  /// the objective (or be reset to null first).
  void setThreadPool(ThreadPool *Pool) { this->Pool = Pool; }

  /// Pins variable \p Var to \p Value (seed labels).
  void pin(uint32_t Var, double Value) { Inner.pin(Var, Value); }

  /// A feasible starting point: all zeros, pinned values applied.
  std::vector<double> initialPoint() const { return Inner.initialPoint(); }

  /// The fused kernel: one blocked value sweep plus a scalar epilogue;
  /// writes a subgradient into \p Grad (resized/zeroed) and returns the
  /// full objective value.
  double valueAndGradient(const std::vector<double> &X,
                          std::vector<double> &Grad) const;

  /// Σ_r Weight_r · max(Σ c_i·x_i − C_r, 0).
  double hingeLoss(const std::vector<double> &X) const;

  /// Full objective: hinge loss + λ · Σ free x_v.
  double value(const std::vector<double> &X) const;

  /// Subgradient only (prefer valueAndGradient in loops).
  void gradient(const std::vector<double> &X,
                std::vector<double> &Grad) const;

  /// Projects \p X onto the feasible set.
  void project(std::vector<double> &X) const { Inner.project(X); }

  size_t numVars() const { return Inner.numVars(); }
  size_t numRows() const { return Inner.numRows(); }
  size_t numNonZeros() const { return Inner.numNonZeros(); }
  double lambda() const { return Inner.lambda(); }
  bool isPinned(uint32_t Var) const { return Inner.isPinned(Var); }
  double pinnedValue(uint32_t Var) const { return Inner.pinnedValue(Var); }
  const CompileStats &stats() const { return Inner.stats(); }
  size_t numShards() const { return Shards.size(); }
  SimdPrecision precision() const { return Precision; }

  /// Number of row blocks in the sliced layout (tests/diagnostics).
  size_t numBlocks() const { return BlockWidth.size(); }
  /// Rows per block in the active layout (depends on precision and the
  /// dispatched kernel tier).
  size_t lanesPerBlock() const { return lanes(); }
  /// Padded entries the blocking added on top of numNonZeros().
  size_t paddedEntries() const { return BIdx.size() - Inner.numNonZeros(); }

  /// True when vector kernels were selected at construction (host
  /// supports AVX2 and SELDON_SIMD does not force the scalar fallback).
  bool simdActive() const { return UseAvx2; }
  /// True when the wider AVX-512 kernels were selected (host supports
  /// AVX512F+VL and SELDON_SIMD does not cap the tier at "avx2").
  bool avx512Active() const { return UseAvx512; }
  /// Host/override check: AVX2 available and not disabled via
  /// SELDON_SIMD=off|0|scalar. Evaluated per construction.
  static bool simdSupported();
  /// Host/override check for the AVX-512 tier; SELDON_SIMD=avx2 caps the
  /// dispatch at the AVX2 kernels.
  static bool avx512Supported();

  /// The compiled objective this layout was derived from (reference path
  /// for tests; also owns pins and projection).
  const CompiledObjective &inner() const { return Inner; }

private:
  /// Row range [Begin, End) and its block range [BlockBegin, BlockEnd).
  struct Shard {
    size_t Begin = 0;
    size_t End = 0;
    size_t BlockBegin = 0;
    size_t BlockEnd = 0;
  };

  size_t lanes() const {
    const size_t Base = Precision == SimdPrecision::F64 ? 4 : 8;
    return UseAvx512 ? 2 * Base : Base;
  }

  /// Builds the sliced layout (shards, blocks, interleaved arrays).
  void buildBlocks();

  /// Runs the blocked value pass for one shard, storing per-row results
  /// into RowHinge (F64: weighted hinge) / RowValF (F32: raw row value),
  /// indexed by original row.
  void valuePass(const Shard &S, const double *X) const;

  /// Scalar pass in original row order over [Begin, End): hinge total
  /// and (when \p GradOut is non-null) gradient scatter from the blocked
  /// Weight·Coef products.
  double shardEpilogue(size_t Begin, size_t End, double *GradOut) const;

  /// Sweep over all shards; mirrors CompiledObjective::sweep reductions.
  double sweep(const std::vector<double> &X, bool WithGradient,
               std::vector<double> *Grad) const;

  CompiledObjective Inner;
  SimdPrecision Precision;
  bool UseAvx2;
  bool UseAvx512;

  /// Sliced layout. Block b covers lanes BlockRows[b·Lanes .. +Lanes)
  /// (Sentinel = numRows marks a padding lane), has width BlockWidth[b]
  /// and data at BlockOff[b], lane-interleaved.
  std::vector<size_t> BlockOff;
  std::vector<uint32_t> BlockWidth;
  std::vector<uint32_t> BlockRows;
  std::vector<uint32_t> BIdx;
  std::vector<double> BVal;   ///< fp64 coefficients (F64 mode).
  std::vector<double> BNegC;  ///< fp64 −C per lane (F64 mode).
  std::vector<double> BW;     ///< fp64 weight per lane (F64 mode).
  std::vector<float> BValF;   ///< fp32 coefficients (F32 mode).
  std::vector<float> BNegCF;  ///< fp32 −C per lane (F32 mode).
  /// Precomputed Weight·Coef per CSR entry (double in both modes,
  /// contiguous in the inner CompiledObjective's term order): the
  /// gradient scatter's operands, bit-identical to the compiled kernel's
  /// per-term scalar products.
  std::vector<double> SWC;

  std::vector<Shard> Shards;
  ThreadPool *Pool = nullptr;

  /// Per-row results of the value pass (original row index): F64 mode
  /// stores the weighted hinge Weight·max(V, 0); F32 mode stores the raw
  /// float row value.
  mutable std::vector<double> RowHinge;
  mutable std::vector<float> RowValF;
  /// Violated-row compaction scratch for the AVX-512 epilogue; each
  /// shard writes only its own [Begin, End) subrange, so parallel sweeps
  /// never share a region.
  mutable std::vector<uint32_t> RScratch;
  mutable std::vector<double> HScratch;
  mutable std::vector<float> VScratchF;
  /// Float-converted iterate, refreshed once per sweep (F32 mode).
  mutable std::vector<float> XF;
  /// Per-shard reduction buffers (only used with more than one shard).
  mutable std::vector<std::vector<double>> ShardGrad;
  mutable std::vector<double> ShardHinge;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_SIMDOBJECTIVE_H
