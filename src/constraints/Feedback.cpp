//===- constraints/Feedback.cpp - Feedback-weighted inference -------------===//

#include "constraints/Feedback.h"

#include <algorithm>
#include <array>
#include <unordered_map>

using namespace seldon;
using namespace seldon::constraints;
using namespace seldon::propgraph;

std::vector<FeedbackEntry> FeedbackSet::entries() const {
  std::vector<FeedbackEntry> Out;
  Out.reserve(Verdicts.size());
  for (const auto &[Key, Accepted] : Verdicts)
    Out.push_back({Key.first, static_cast<Role>(Key.second), Accepted});
  return Out; // std::map iterates in (rep, role) order already.
}

namespace {

/// One evidence row: w*(1-x) pulling toward 1 for an accept, w*x pulling
/// toward 0 for a reject. The constant is derived from the rounded float
/// coefficient so an accepted variable at exactly 1 contributes zero.
void appendEvidenceRow(ConstraintSystem &Sys, VarId V, double W,
                       bool Accepted) {
  solver::Term T;
  T.Var = V;
  T.Coef = static_cast<float>(W);
  solver::LinearConstraint Row;
  if (Accepted) {
    Row.Rhs.push_back(T);
    Row.C = -static_cast<double>(T.Coef);
  } else {
    Row.Lhs.push_back(T);
    Row.C = 0.0;
  }
  Sys.Constraints.push_back(std::move(Row));
}

} // namespace

FeedbackStats
seldon::constraints::applyFeedback(ConstraintSystem &Sys,
                                   const propgraph::RepTable &Reps,
                                   const FeedbackSet &Set,
                                   const FeedbackOptions &Opts) {
  FeedbackStats Stats;

  struct Direct {
    RepId Rep;
    VarId Var;
    Role R = Role::Source;
    bool Accepted = false;
  };
  std::vector<Direct> Directs;
  for (const FeedbackEntry &E : Set.entries()) {
    RepId Id;
    VarId V;
    if (!Reps.lookup(E.Rep, Id) || !Sys.Vars.lookup(Id, E.R, V)) {
      ++Stats.Unmatched;
      continue;
    }
    ++Stats.Matched;
    Directs.push_back({Id, V, E.R, E.Accepted});
  }

  // Direct rows first, already in (rep, role) order via entries().
  for (const Direct &D : Directs) {
    appendEvidenceRow(Sys, D.Var,
                      D.Accepted ? Opts.AcceptWeight : Opts.RejectWeight,
                      D.Accepted);
    ++Stats.EvidenceRows;
  }
  if (Opts.SimilarityDecay <= 0.0 || Directs.empty())
    return Stats;

  // Similarity propagation: a verdict reaches exactly the representations
  // that share an event's surviving backoff set with the judged one.
  // Targets keep the strongest decayed accept and/or reject evidence over
  // all shared events; max() is order-independent, so the result does not
  // depend on event order.
  std::array<std::unordered_map<RepId, double>, NumRoles> DirectAccept;
  std::array<std::unordered_map<RepId, double>, NumRoles> DirectReject;
  std::array<std::unordered_map<RepId, char>, NumRoles> HasDirect;
  for (const Direct &D : Directs) {
    size_t R = static_cast<size_t>(D.R);
    HasDirect[R][D.Rep] = 1;
    auto &Map = D.Accepted ? DirectAccept[R] : DirectReject[R];
    double W = D.Accepted ? Opts.AcceptWeight : Opts.RejectWeight;
    double &Slot = Map[D.Rep];
    Slot = std::max(Slot, W);
  }

  std::array<std::unordered_map<RepId, double>, NumRoles> PropAccept;
  std::array<std::unordered_map<RepId, double>, NumRoles> PropReject;
  for (const std::vector<RepId> &Options : Sys.EventReps) {
    if (Options.size() < 2)
      continue;
    for (size_t R = 0; R < NumRoles; ++R) {
      double MaxAcc = 0.0, MaxRej = 0.0;
      for (RepId Id : Options) {
        auto AccIt = DirectAccept[R].find(Id);
        if (AccIt != DirectAccept[R].end())
          MaxAcc = std::max(MaxAcc, AccIt->second);
        auto RejIt = DirectReject[R].find(Id);
        if (RejIt != DirectReject[R].end())
          MaxRej = std::max(MaxRej, RejIt->second);
      }
      if (MaxAcc <= 0.0 && MaxRej <= 0.0)
        continue;
      for (RepId Id : Options) {
        if (HasDirect[R].count(Id))
          continue; // A direct verdict overrides propagation.
        if (MaxAcc > 0.0) {
          double &Slot = PropAccept[R][Id];
          Slot = std::max(Slot, MaxAcc * Opts.SimilarityDecay);
        }
        if (MaxRej > 0.0) {
          double &Slot = PropReject[R][Id];
          Slot = std::max(Slot, MaxRej * Opts.SimilarityDecay);
        }
      }
    }
  }

  // Propagated rows in (rep, role, accept-before-reject) order.
  struct Prop {
    const std::string *Rep;
    VarId Var;
    Role R;
    double W;
    bool Accepted;
  };
  std::vector<Prop> Props;
  for (size_t R = 0; R < NumRoles; ++R) {
    auto Collect = [&](const std::unordered_map<RepId, double> &Map,
                       bool Accepted) {
      for (const auto &[Id, W] : Map) {
        VarId V;
        if (!Sys.Vars.lookup(Id, static_cast<Role>(R), V))
          continue;
        Props.push_back({&Reps.repString(Id), V, static_cast<Role>(R), W,
                         Accepted});
      }
    };
    Collect(PropAccept[R], /*Accepted=*/true);
    Collect(PropReject[R], /*Accepted=*/false);
  }
  std::sort(Props.begin(), Props.end(), [](const Prop &A, const Prop &B) {
    if (*A.Rep != *B.Rep)
      return *A.Rep < *B.Rep;
    if (A.R != B.R)
      return A.R < B.R;
    return A.Accepted && !B.Accepted;
  });
  for (const Prop &P : Props) {
    appendEvidenceRow(Sys, P.Var, P.W, P.Accepted);
    ++Stats.PropagatedRows;
  }
  return Stats;
}
