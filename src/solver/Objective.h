//===- solver/Objective.h - Relaxed constraint-system objective --*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relaxed linear optimization problem of paper §4.4, Eq. (9):
///
///   min  Σ_i max(L_i − R_i, 0)  +  λ · Σ_v x_v
///   s.t. 0 ≤ x_v ≤ 1            (Eq. 10, enforced by projection)
///        x_v = c_v for pinned v (Eq. 11, the seed specification)
///
/// Each soft constraint states Σ lhs ≤ Σ rhs + C; its violation
/// max(Σ lhs − Σ rhs − C, 0) is hinge-shaped, so the objective is convex
/// and a subgradient method converges.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_OBJECTIVE_H
#define SELDON_SOLVER_OBJECTIVE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seldon {
namespace solver {

/// One weighted variable occurrence.
struct Term {
  uint32_t Var = 0;
  float Coef = 1.0f;
};

/// A soft constraint: Σ Lhs ≤ Σ Rhs + C.
struct LinearConstraint {
  std::vector<Term> Lhs;
  std::vector<Term> Rhs;
  double C = 0.0;
};

/// The relaxed objective over a fixed constraint system.
class Objective {
public:
  Objective(size_t NumVars, std::vector<LinearConstraint> Constraints,
            double Lambda);

  /// Pins variable \p Var to \p Value (seed labels). Pinned variables are
  /// reset to their value by project() and carry no L1 penalty.
  void pin(uint32_t Var, double Value);

  /// A feasible starting point: all zeros, pinned values applied.
  std::vector<double> initialPoint() const;

  /// Σ_i max(L_i − R_i − C_i, 0).
  double hingeLoss(const std::vector<double> &X) const;

  /// Full objective: hinge loss + λ · Σ free x_v.
  double value(const std::vector<double> &X) const;

  /// Writes a subgradient of the objective into \p Grad (resized/zeroed).
  /// Pinned variables receive gradient 0.
  void gradient(const std::vector<double> &X, std::vector<double> &Grad) const;

  /// Projects \p X onto the feasible set: clamps to [0, 1] and restores
  /// pinned values.
  void project(std::vector<double> &X) const;

  size_t numVars() const { return NumVars; }
  size_t numConstraints() const { return Constraints.size(); }
  double lambda() const { return Lambda; }
  bool isPinned(uint32_t Var) const { return Pinned[Var]; }
  double pinnedValue(uint32_t Var) const { return PinnedValues[Var]; }

private:
  size_t NumVars;
  std::vector<LinearConstraint> Constraints;
  double Lambda;
  std::vector<bool> Pinned;
  std::vector<double> PinnedValues;
};

/// Shared optimizer knobs and results.
struct SolveOptions {
  int MaxIterations = 500;
  double LearningRate = 0.05;
  /// Stop when the objective improves by less than this between iterations.
  double Tolerance = 1e-7;
  /// Adam moment decay rates.
  double Beta1 = 0.9;
  double Beta2 = 0.999;
  double Epsilon = 1e-8;
};

struct SolveResult {
  std::vector<double> X;
  double FinalObjective = 0.0;
  int Iterations = 0;
  bool Converged = false;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_OBJECTIVE_H
