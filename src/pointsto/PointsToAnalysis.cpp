//===- pointsto/PointsToAnalysis.cpp - AST-driven points-to ---------------===//

#include "pointsto/PointsToAnalysis.h"

#include "pyast/AstPrinter.h"
#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::pointsto;
using namespace seldon::pyast;

VarId PointsToAnalysis::varFor(const std::string &Scope,
                               const std::string &Name) {
  std::string Key = Scope + "::" + Name;
  auto It = VarIds.find(Key);
  if (It != VarIds.end())
    return It->second;
  VarId V = Solver.makeVar(Key);
  VarIds.emplace(std::move(Key), V);
  return V;
}

std::optional<VarId>
PointsToAnalysis::lookupVar(const std::string &Scope,
                            const std::string &Name) const {
  auto It = VarIds.find(Scope + "::" + Name);
  if (It == VarIds.end())
    return std::nullopt;
  return It->second;
}

bool PointsToAnalysis::mayAlias(const std::string &ScopeA,
                                const std::string &NameA,
                                const std::string &ScopeB,
                                const std::string &NameB) const {
  std::optional<VarId> A = lookupVar(ScopeA, NameA);
  std::optional<VarId> B = lookupVar(ScopeB, NameB);
  if (!A || !B)
    return false;
  return Solver.mayAlias(*A, *B);
}

VarId PointsToAnalysis::evalExpr(const std::string &Scope, const Expr *E) {
  switch (E->kind()) {
  case NodeKind::Name:
    return varFor(Scope, cast<NameExpr>(E)->Id);
  case NodeKind::Attribute: {
    const auto *A = cast<AttributeExpr>(E);
    VarId Base = evalExpr(Scope, A->Value);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    Solver.addLoad(Tmp, Base, A->Attr);
    return Tmp;
  }
  case NodeKind::Subscript: {
    // Model containers with a single abstract element field.
    const auto *S = cast<SubscriptExpr>(E);
    VarId Base = evalExpr(Scope, S->Value);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    Solver.addLoad(Tmp, Base, "$elem");
    return Tmp;
  }
  case NodeKind::Call: {
    // Calls to functions with unknown bodies are allocation sites (§5.2).
    const auto *C = cast<CallExpr>(E);
    for (const Expr *Arg : C->Args)
      evalExpr(Scope, Arg);
    for (const KeywordArg &K : C->Keywords)
      evalExpr(Scope, K.Value);
    evalExpr(Scope, C->Callee);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    ObjId O = Solver.makeObj("call@" + std::to_string(E->loc().Line) + ":" +
                             std::to_string(E->loc().Col));
    Solver.addAlloc(Tmp, O);
    return Tmp;
  }
  case NodeKind::List:
  case NodeKind::Tuple:
  case NodeKind::Set: {
    const std::vector<Expr *> *Elements;
    if (const auto *L = dyn_cast<ListExpr>(E))
      Elements = &L->Elements;
    else if (const auto *T = dyn_cast<TupleExpr>(E))
      Elements = &T->Elements;
    else
      Elements = &cast<SetExpr>(E)->Elements;
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    ObjId O = Solver.makeObj("container@" + std::to_string(E->loc().Line));
    Solver.addAlloc(Tmp, O);
    for (const Expr *Elem : *Elements) {
      VarId EV = evalExpr(Scope, Elem);
      Solver.addStore(Tmp, "$elem", EV);
    }
    return Tmp;
  }
  case NodeKind::Dict: {
    const auto *D = cast<DictExpr>(E);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    ObjId O = Solver.makeObj("dict@" + std::to_string(E->loc().Line));
    Solver.addAlloc(Tmp, O);
    for (const Expr *V : D->Values) {
      VarId EV = evalExpr(Scope, V);
      Solver.addStore(Tmp, "$elem", EV);
    }
    return Tmp;
  }
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    evalExpr(Scope, C->Cond);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    Solver.addCopy(Tmp, evalExpr(Scope, C->Body));
    Solver.addCopy(Tmp, evalExpr(Scope, C->OrElse));
    return Tmp;
  }
  case NodeKind::BoolOp: {
    // `a or default()` evaluates to one of its operands.
    const auto *B = cast<BoolOpExpr>(E);
    VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
    for (const Expr *Op : B->Operands)
      Solver.addCopy(Tmp, evalExpr(Scope, Op));
    return Tmp;
  }
  case NodeKind::Starred:
    return evalExpr(Scope, cast<StarredExpr>(E)->Value);
  default: {
    // Literals, arithmetic, comparisons, lambdas, comprehensions: no
    // object identity we track; return a fresh empty variable.
    return Solver.makeVar("tmp" + std::to_string(TempCount++));
  }
  }
}

void PointsToAnalysis::assignTo(const std::string &Scope, const Expr *Target,
                                VarId Value) {
  switch (Target->kind()) {
  case NodeKind::Name:
    Solver.addCopy(varFor(Scope, cast<NameExpr>(Target)->Id), Value);
    return;
  case NodeKind::Attribute: {
    const auto *A = cast<AttributeExpr>(Target);
    VarId Base = evalExpr(Scope, A->Value);
    Solver.addStore(Base, A->Attr, Value);
    return;
  }
  case NodeKind::Subscript: {
    const auto *S = cast<SubscriptExpr>(Target);
    VarId Base = evalExpr(Scope, S->Value);
    Solver.addStore(Base, "$elem", Value);
    return;
  }
  case NodeKind::Tuple:
  case NodeKind::List: {
    const auto &Elements = Target->kind() == NodeKind::Tuple
                               ? cast<TupleExpr>(Target)->Elements
                               : cast<ListExpr>(Target)->Elements;
    // Unpacking: each element may receive any value from the right-hand
    // side's abstract element field (or the value itself, conservatively).
    for (const Expr *Elem : Elements) {
      VarId Tmp = Solver.makeVar("tmp" + std::to_string(TempCount++));
      Solver.addLoad(Tmp, Value, "$elem");
      Solver.addCopy(Tmp, Value);
      assignTo(Scope, Elem, Tmp);
    }
    return;
  }
  case NodeKind::Starred:
    assignTo(Scope, cast<StarredExpr>(Target)->Value, Value);
    return;
  default:
    return; // Not a valid target; ignore.
  }
}

void PointsToAnalysis::runStmts(const std::string &Scope,
                                const std::vector<Stmt *> &Body) {
  for (const Stmt *S : Body) {
    switch (S->kind()) {
    case NodeKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      VarId V = evalExpr(Scope, A->Value);
      for (const Expr *T : A->Targets)
        assignTo(Scope, T, V);
      break;
    }
    case NodeKind::AugAssign: {
      const auto *A = cast<AugAssignStmt>(S);
      VarId V = evalExpr(Scope, A->Value);
      assignTo(Scope, A->Target, V);
      break;
    }
    case NodeKind::AnnAssign: {
      const auto *A = cast<AnnAssignStmt>(S);
      if (A->Value)
        assignTo(Scope, A->Target, evalExpr(Scope, A->Value));
      break;
    }
    case NodeKind::ExprStmt:
      evalExpr(Scope, cast<ExprStmt>(S)->Value);
      break;
    case NodeKind::Return:
      if (cast<ReturnStmt>(S)->Value)
        Solver.addCopy(varFor(Scope, "$return"),
                       evalExpr(Scope, cast<ReturnStmt>(S)->Value));
      break;
    case NodeKind::If: {
      const auto *I = cast<IfStmt>(S);
      evalExpr(Scope, I->Cond);
      runStmts(Scope, I->Then);
      runStmts(Scope, I->Else);
      break;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileStmt>(S);
      evalExpr(Scope, W->Cond);
      runStmts(Scope, W->Body);
      runStmts(Scope, W->Else);
      break;
    }
    case NodeKind::For: {
      const auto *F = cast<ForStmt>(S);
      VarId Iter = evalExpr(Scope, F->Iter);
      VarId Elem = Solver.makeVar("tmp" + std::to_string(TempCount++));
      Solver.addLoad(Elem, Iter, "$elem");
      assignTo(Scope, F->Target, Elem);
      runStmts(Scope, F->Body);
      runStmts(Scope, F->Else);
      break;
    }
    case NodeKind::With: {
      const auto *W = cast<WithStmt>(S);
      for (const WithItem &Item : W->Items) {
        VarId Ctx = evalExpr(Scope, Item.ContextExpr);
        if (Item.OptionalVars)
          assignTo(Scope, Item.OptionalVars, Ctx);
      }
      runStmts(Scope, W->Body);
      break;
    }
    case NodeKind::Try: {
      const auto *T = cast<TryStmt>(S);
      runStmts(Scope, T->Body);
      for (const ExceptHandler &H : T->Handlers)
        runStmts(Scope, H.Body);
      runStmts(Scope, T->OrElse);
      runStmts(Scope, T->Finally);
      break;
    }
    case NodeKind::FunctionDef: {
      const auto *F = cast<FunctionDefStmt>(S);
      std::string Inner = Scope.empty() ? F->Name : Scope + "." + F->Name;
      // Parameters are allocation sites: their values come from outside.
      for (const Param &P : F->Params) {
        VarId PV = varFor(Inner, P.Name);
        Solver.addAlloc(PV, Solver.makeObj("param:" + Inner + "." + P.Name));
      }
      runStmts(Inner, F->Body);
      break;
    }
    case NodeKind::ClassDef: {
      const auto *C = cast<ClassDefStmt>(S);
      std::string Inner = Scope.empty() ? C->Name : Scope + "." + C->Name;
      runStmts(Inner, C->Body);
      break;
    }
    default:
      break;
    }
  }
}

void PointsToAnalysis::run(const ModuleNode *Module) {
  runStmts("", Module->Body);
  Solver.solve();
}
