//===- tests/support_test.cpp - Tests for the support library -------------===//

#include "support/Glob.h"
#include "support/Rng.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace seldon;

namespace {

//===----------------------------------------------------------------------===//
// globMatch
//===----------------------------------------------------------------------===//

TEST(GlobTest, LiteralMatch) {
  EXPECT_TRUE(globMatch("flask.request", "flask.request"));
  EXPECT_FALSE(globMatch("flask.request", "flask.requests"));
  EXPECT_FALSE(globMatch("flask.requests", "flask.request"));
  EXPECT_TRUE(globMatch("", ""));
  EXPECT_FALSE(globMatch("", "x"));
}

TEST(GlobTest, LeadingStar) {
  EXPECT_TRUE(globMatch("*tensorflow*", "tensorflow"));
  EXPECT_TRUE(globMatch("*tensorflow*", "a.tensorflow.b"));
  EXPECT_FALSE(globMatch("*tensorflow*", "tensorflo"));
}

TEST(GlobTest, SuffixPattern) {
  // Paper App. B blacklists patterns like `*.all()`.
  EXPECT_TRUE(globMatch("*.all()", "MyModel.objects.all()"));
  EXPECT_FALSE(globMatch("*.all()", "all()"));
  EXPECT_FALSE(globMatch("*.all()", "x.all().filter()"));
}

TEST(GlobTest, PrefixPattern) {
  EXPECT_TRUE(globMatch("flask.Flask()*", "flask.Flask()"));
  EXPECT_TRUE(globMatch("flask.Flask()*", "flask.Flask().run()"));
  EXPECT_FALSE(globMatch("flask.Flask()*", "myflask.Flask()"));
}

TEST(GlobTest, MultipleStars) {
  EXPECT_TRUE(globMatch("*a*b*", "xaYb"));
  EXPECT_TRUE(globMatch("*a*b*", "ab"));
  EXPECT_FALSE(globMatch("*a*b*", "ba"));
  EXPECT_TRUE(globMatch("a**b", "ab"));
  EXPECT_TRUE(globMatch("a**b", "axxb"));
}

TEST(GlobTest, StarOnly) {
  EXPECT_TRUE(globMatch("*", ""));
  EXPECT_TRUE(globMatch("*", "anything.at.all()"));
}

TEST(GlobTest, BacktrackingStress) {
  // Degenerate pattern that exercises the backtracking path.
  std::string Text(200, 'a');
  EXPECT_TRUE(globMatch("*a*a*a*a*a*b*", Text + "b"));
  EXPECT_FALSE(globMatch("*a*a*a*a*a*b*", Text));
}

TEST(GlobSetTest, ExactAndWildcardBuckets) {
  GlobSet Set;
  Set.add("json.dump()");
  Set.add("*logging*");
  EXPECT_EQ(Set.size(), 2u);
  EXPECT_TRUE(Set.matches("json.dump()"));
  EXPECT_FALSE(Set.matches("json.dumps()"));
  EXPECT_TRUE(Set.matches("my.logging.handler()"));
  EXPECT_FALSE(Set.matches("logger"));
}

TEST(GlobSetTest, EmptySetMatchesNothing) {
  GlobSet Set;
  EXPECT_TRUE(Set.empty());
  EXPECT_FALSE(Set.matches("anything"));
}

TEST(GlobSetTest, DuplicatePatternsPreservedInOriginalOrder) {
  GlobSet Set;
  Set.add("json.dump()");
  Set.add("*logging*");
  Set.add("json.dump()");
  EXPECT_EQ(Set.size(), 3u);
  ASSERT_EQ(Set.patterns().size(), 3u);
  EXPECT_EQ(Set.patterns()[0], "json.dump()");
  EXPECT_EQ(Set.patterns()[1], "*logging*");
  EXPECT_EQ(Set.patterns()[2], "json.dump()");
  EXPECT_TRUE(Set.matches("json.dump()"));
}

TEST(GlobSetTest, EmptyPatternMatchesOnlyEmptyText) {
  GlobSet Set;
  Set.add("");
  EXPECT_FALSE(Set.empty());
  EXPECT_TRUE(Set.matches(""));
  EXPECT_FALSE(Set.matches("x"));
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng R(13);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng A(99);
  Rng Child = A.fork();
  // The child stream should not simply replay the parent stream.
  Rng B(99);
  B.fork();
  EXPECT_EQ(A.next(), B.next()) << "fork must advance parent deterministically";
  (void)Child;
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(5);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// StrUtil
//===----------------------------------------------------------------------===//

TEST(StrUtilTest, SplitBasic) {
  auto Parts = splitString("a.b.c", '.');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StrUtilTest, SplitEmptyPieces) {
  auto Parts = splitString("..", '.');
  ASSERT_EQ(Parts.size(), 3u);
  for (const auto &P : Parts)
    EXPECT_TRUE(P.empty());
}

TEST(StrUtilTest, SplitEmptyString) {
  auto Parts = splitString("", '.');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_TRUE(Parts[0].empty());
}

TEST(StrUtilTest, SplitLeadingAndTrailingSeparators) {
  auto Lead = splitString(".a", '.');
  ASSERT_EQ(Lead.size(), 2u);
  EXPECT_TRUE(Lead[0].empty());
  EXPECT_EQ(Lead[1], "a");

  auto Trail = splitString("a.", '.');
  ASSERT_EQ(Trail.size(), 2u);
  EXPECT_EQ(Trail[0], "a");
  EXPECT_TRUE(Trail[1].empty());
}

TEST(StrUtilTest, SplitSeparatorNotPresent) {
  auto Parts = splitString("abc", '.');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StrUtilTest, JoinRoundTrip) {
  std::vector<std::string> Parts{"flask", "request", "args"};
  EXPECT_EQ(joinStrings(Parts, "."), "flask.request.args");
  EXPECT_EQ(splitString(joinStrings(Parts, "."), '.'), Parts);
}

TEST(StrUtilTest, JoinEmpty) {
  EXPECT_EQ(joinStrings({}, ","), "");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StrUtilTest, TrimIsViewIntoInput) {
  // trim returns a view, so no whitespace-only prefix/suffix copies.
  std::string S = "  payload\t";
  std::string_view V = trim(S);
  EXPECT_EQ(V, "payload");
  EXPECT_GE(V.data(), S.data());
  EXPECT_LE(V.data() + V.size(), S.data() + S.size());
}

TEST(StrUtilTest, TrimAllWhitespaceKinds) {
  EXPECT_EQ(trim(" \t\r\n\f\v"), "");
  EXPECT_EQ(trim("\va\f"), "a");
}

TEST(StrUtilTest, JsonEscapeControlAndQuotes) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
}

TEST(StrUtilTest, FormatString) {
  EXPECT_EQ(formatString("%d/%d = %.2f", 1, 2, 0.5), "1/2 = 0.50");
  EXPECT_EQ(formatString("%s", "hello"), "hello");
  EXPECT_EQ(formatString("empty"), "empty");
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"Role", "Count"});
  T.addRow({"Sources", "4384"});
  T.addRow({"Sinks", "866"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Role"), std::string::npos);
  EXPECT_NE(Out.find("Sources  4384"), std::string::npos);
  EXPECT_NE(Out.find("Sinks"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter T({"A", "B", "C"});
  T.addRow({"x"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find('x'), std::string::npos);
}

} // namespace
