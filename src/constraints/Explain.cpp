//===- constraints/Explain.cpp - Constraint-level explanations ------------===//

#include "constraints/Explain.h"

#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::constraints;
using namespace seldon::propgraph;

namespace {

void renderTerms(const ConstraintSystem &Sys, const RepTable &Reps,
                 const std::vector<solver::Term> &Terms, std::string &Out) {
  if (Terms.empty()) {
    Out += "0";
    return;
  }
  for (size_t I = 0; I < Terms.size(); ++I) {
    if (I)
      Out += " + ";
    if (Terms[I].Coef != 1.0f)
      Out += formatString("%.3g*", Terms[I].Coef);
    Out += Reps.repString(Sys.Vars.repOf(Terms[I].Var));
    Out += '^';
    Out += roleName(Sys.Vars.roleOf(Terms[I].Var));
  }
}

double evalSide(const std::vector<solver::Term> &Terms,
                const std::vector<double> &X) {
  double Sum = 0.0;
  for (const solver::Term &T : Terms)
    Sum += T.Coef * X[T.Var];
  return Sum;
}

bool mentions(const std::vector<solver::Term> &Terms, VarId V) {
  for (const solver::Term &T : Terms)
    if (T.Var == V)
      return true;
  return false;
}

} // namespace

std::string
seldon::constraints::renderConstraint(const ConstraintSystem &Sys,
                                      const RepTable &Reps,
                                      const solver::LinearConstraint &C) {
  std::string Out;
  renderTerms(Sys, Reps, C.Lhs, Out);
  Out += " <= ";
  renderTerms(Sys, Reps, C.Rhs, Out);
  Out += formatString(" + %.2f", C.C);
  return Out;
}

Explanation seldon::constraints::explainRep(const ConstraintSystem &Sys,
                                            const RepTable &Reps,
                                            const std::string &Rep, Role R,
                                            const std::vector<double> &X) {
  Explanation Out;
  RepId Id;
  if (!Reps.lookup(Rep, Id))
    return Out;
  VarId V;
  if (!Sys.Vars.lookup(Id, R, V))
    return Out;
  Out.Found = true;
  Out.Score = V < X.size() ? X[V] : 0.0;
  for (const auto &[PinnedVar, Value] : Sys.Pinned)
    if (PinnedVar == V) {
      Out.Pinned = true;
      Out.PinnedValue = Value;
    }

  for (const solver::LinearConstraint &C : Sys.Constraints) {
    bool Lhs = mentions(C.Lhs, V);
    bool Rhs = mentions(C.Rhs, V);
    if (!Lhs && !Rhs)
      continue;
    ExplainedConstraint EC;
    EC.Text = renderConstraint(Sys, Reps, C);
    EC.Residual = X.empty() ? 0.0
                            : evalSide(C.Lhs, X) - evalSide(C.Rhs, X) - C.C;
    EC.OnLhs = Lhs;
    Out.Constraints.push_back(std::move(EC));
  }
  return Out;
}
