//===- support/Rng.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) used by the corpus generator and
/// evaluation sampling. We avoid std::mt19937 so that corpus generation is
/// bit-identical across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_RNG_H
#define SELDON_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace seldon {

/// Deterministic SplitMix64 generator with convenience sampling helpers.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P.
  bool nextBool(double P);

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "cannot pick from an empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.empty())
      return;
    for (size_t I = Items.size() - 1; I > 0; --I)
      std::swap(Items[I], Items[nextBelow(I + 1)]);
  }

  /// Derives an independent child generator; useful for making per-project
  /// randomness independent of the order projects are generated in.
  Rng fork();

private:
  uint64_t State;
};

} // namespace seldon

#endif // SELDON_SUPPORT_RNG_H
