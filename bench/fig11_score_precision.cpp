//===- bench/fig11_score_precision.cpp - Paper Fig. 11 --------------------===//
//
// Regenerates Figure 11: for 50 sampled candidates per role, sorted by
// predicted score, the per-sample score and the cumulative precision up to
// that sample. The paper's observation: few samples sit near 1.0, most
// cluster around 0.5, and higher scores correlate with higher precision.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());

  std::cout << "=== Figure 11: score vs cumulative precision over 50 "
               "sampled candidates per role ===\n";
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    auto Sample =
        sampledPredictions(Run.Pipeline.Learned, Run.Data.Truth,
                           Run.Data.Seed, R, ScoreThreshold, 50,
                           /*SampleSeed=*/7);
    std::vector<double> Curve = cumulativePrecision(Sample);

    std::cout << "\n--- Candidate " << propgraph::roleName(R)
              << "s (sorted by score) ---\n";
    TablePrinter Table({"#", "Representation", "Score", "Correct",
                        "Cumulative precision"});
    for (size_t I = 0; I < Sample.size(); ++I)
      Table.addRow({std::to_string(I + 1), Sample[I].Rep,
                    formatString("%.2f", Sample[I].Score),
                    Sample[I].Correct ? "yes" : "no",
                    percent(Curve[I])});
    Table.print(std::cout);
    if (!Curve.empty())
      std::cout << formatString(
          "Head precision (first 10): %s | full-sample precision: %s\n",
          percent(Curve[std::min<size_t>(9, Curve.size() - 1)]).c_str(),
          percent(Curve.back()).c_str());
  }
  std::cout << "\nPaper reference: Tab. 8-10 list the corresponding 50 "
               "samples per role; precision\ndecreases as scores decay "
               "toward the 0.1 threshold.\n";
  return 0;
}
