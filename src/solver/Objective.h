//===- solver/Objective.h - Relaxed constraint-system objective --*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relaxed linear optimization problem of paper §4.4, Eq. (9):
///
///   min  Σ_i max(L_i − R_i, 0)  +  λ · Σ_v x_v
///   s.t. 0 ≤ x_v ≤ 1            (Eq. 10, enforced by projection)
///        x_v = c_v for pinned v (Eq. 11, the seed specification)
///
/// Each soft constraint states Σ lhs ≤ Σ rhs + C; its violation
/// max(Σ lhs − Σ rhs − C, 0) is hinge-shaped, so the objective is convex
/// and a subgradient method converges.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_OBJECTIVE_H
#define SELDON_SOLVER_OBJECTIVE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace seldon {

class ThreadPool;

namespace solver {

/// Shard partitioning rule, shared by Objective and CompiledObjective:
/// shards smaller than MinShardSize are not worth a task dispatch; the cap
/// bounds the per-shard gradient buffers (MaxShards * NumVars doubles).
constexpr size_t MinShardSize = 1024;
constexpr size_t MaxShards = 32;

/// One weighted variable occurrence.
struct Term {
  uint32_t Var = 0;
  float Coef = 1.0f;
};

/// A soft constraint: Σ Lhs ≤ Σ Rhs + C.
struct LinearConstraint {
  std::vector<Term> Lhs;
  std::vector<Term> Rhs;
  double C = 0.0;
};

/// The relaxed objective over a fixed constraint system.
///
/// Constraints are partitioned into fixed-size shards at construction.
/// hingeLoss() and gradient() accumulate each shard serially into its own
/// buffer and reduce the buffers in shard order, so the floating-point
/// result is bit-identical whether shards run on one thread or many: the
/// shard structure depends only on the constraint count, never on the
/// thread count.
class Objective {
public:
  Objective(size_t NumVars, std::vector<LinearConstraint> Constraints,
            double Lambda);

  /// Evaluates hinge loss and gradients on \p Pool (one task per shard).
  /// Null reverts to serial execution; either way the arithmetic — and
  /// therefore the optimizer trajectory — is identical. The pool must
  /// outlive the objective (or be reset to null first).
  void setThreadPool(ThreadPool *Pool) { this->Pool = Pool; }

  /// Pins variable \p Var to \p Value (seed labels). Pinned variables are
  /// reset to their value by project() and carry no L1 penalty.
  void pin(uint32_t Var, double Value);

  /// A feasible starting point: all zeros, pinned values applied.
  std::vector<double> initialPoint() const;

  /// Σ_i max(L_i − R_i − C_i, 0).
  double hingeLoss(const std::vector<double> &X) const;

  /// Full objective: hinge loss + λ · Σ free x_v.
  double value(const std::vector<double> &X) const;

  /// Writes a subgradient of the objective into \p Grad (resized/zeroed).
  /// Pinned variables receive gradient 0.
  void gradient(const std::vector<double> &X, std::vector<double> &Grad) const;

  /// Reference evaluator for the optimizer's fused interface: gradient()
  /// followed by value() — two constraint sweeps, bit-identical to calling
  /// them separately. CompiledObjective fuses the same quantities into one
  /// sweep.
  double valueAndGradient(const std::vector<double> &X,
                          std::vector<double> &Grad) const {
    gradient(X, Grad);
    return value(X);
  }

  /// Projects \p X onto the feasible set: clamps to [0, 1] and restores
  /// pinned values.
  void project(std::vector<double> &X) const;

  size_t numVars() const { return NumVars; }
  size_t numConstraints() const { return Constraints.size(); }
  double lambda() const { return Lambda; }
  bool isPinned(uint32_t Var) const { return Pinned[Var] != 0; }
  double pinnedValue(uint32_t Var) const { return PinnedValues[Var]; }

  /// The source constraints and pin state, exposed for the compilation
  /// pass (CompiledObjective::compile).
  const std::vector<LinearConstraint> &constraints() const {
    return Constraints;
  }
  const std::vector<uint8_t> &pinnedMask() const { return Pinned; }
  const std::vector<double> &pinnedValues() const { return PinnedValues; }

  size_t numShards() const { return Shards.size(); }

private:
  /// Half-open constraint range [Begin, End) accumulated serially.
  struct Shard {
    size_t Begin = 0;
    size_t End = 0;
  };

  /// Adds the hinge subgradient of shard \p S into \p Out (not zeroed).
  void shardGradient(const Shard &S, const std::vector<double> &X,
                     std::vector<double> &Out) const;
  /// Hinge loss of shard \p S.
  double shardHingeLoss(const Shard &S, const std::vector<double> &X) const;

  size_t NumVars;
  std::vector<LinearConstraint> Constraints;
  double Lambda;
  /// Flat pin mask (1 = pinned): a byte load in the project()/gradient()
  /// hot loops instead of std::vector<bool> bit extraction.
  std::vector<uint8_t> Pinned;
  std::vector<double> PinnedValues;

  std::vector<Shard> Shards;
  ThreadPool *Pool = nullptr;
  /// Per-shard gradient buffers, reused across iterations (only allocated
  /// when more than one shard exists).
  mutable std::vector<std::vector<double>> ShardGrad;
};

/// Which evaluator backend a solve runs on. Legacy/Compiled/Simd all
/// produce byte-identical learned specifications; SimdF32 trades bit
/// equality for 8-wide lanes under a documented tolerance (see
/// docs/architecture.md "Solver backends").
enum class SolverBackend {
  Legacy,   ///< Reference Objective: two sweeps per iteration.
  Compiled, ///< Fused CSR kernel (the bit-exact reference for Simd).
  Simd,     ///< Blocked CSR + AVX2 fp64; byte-identical to Compiled.
  SimdF32,  ///< Blocked CSR + AVX2 fp32 compute / fp64 accumulate.
};

/// CLI/wire name of \p Backend: legacy | compiled | simd | simd-f32.
const char *solverBackendName(SolverBackend Backend);

/// Parses a CLI/wire backend name; returns false on unknown names without
/// touching \p Out.
bool parseSolverBackend(const std::string &Name, SolverBackend &Out);

/// Shared optimizer knobs and results.
struct SolveOptions {
  int MaxIterations = 500;
  double LearningRate = 0.05;
  /// Stop when the objective improves by less than this between iterations.
  double Tolerance = 1e-7;
  /// Adam moment decay rates.
  double Beta1 = 0.9;
  double Beta2 = 0.999;
  double Epsilon = 1e-8;
  /// Wall-clock budget for the whole minimize() call; 0 is unlimited.
  /// Checked cooperatively once per iteration: an expired budget stops the
  /// loop and returns the best iterate so far with DeadlineExpired set —
  /// partial and flagged, never a hang.
  double BudgetSeconds = 0.0;
  /// Bound on the non-finite recovery ladder (see docs/architecture.md
  /// "Failure discipline"): each recovery reverts to the best finite
  /// iterate, resets the Adam moments, and halves the step scale. Once
  /// exhausted the solve falls back to best-so-far with FellBack set.
  int MaxRecoveries = 8;
  /// Cooperative cancellation, polled once per iteration (run-level
  /// deadline). Returning true stops the loop like an expired budget.
  std::function<bool()> ShouldStop;
  /// Invoked after every completed iteration with (iteration, current
  /// objective value). Called from the optimizing thread; must not mutate
  /// the objective. Never invoked with a non-finite objective value —
  /// poisoned evaluations are rolled back before any callback fires.
  std::function<void(int Iteration, double Objective)> OnIteration;
  /// Warm-start point: the previous solve's scores mapped onto the current
  /// variable ids, with new variables pre-filled with the cold init (the
  /// caller builds this from a spec::LearnedSpec — see Session::solve).
  /// Used by minimize(Obj) when its size matches the objective's variable
  /// count; the point is projected before the first iteration. Empty (the
  /// default) keeps the exact cold start from Obj.initialPoint().
  std::vector<double> WarmStart;
  /// Evaluator backend Session::solve builds for the run. Legacy,
  /// Compiled, and Simd yield byte-identical specifications; Simd falls
  /// back to a bit-identical scalar kernel on non-AVX2 hosts.
  SolverBackend Backend = SolverBackend::Compiled;
};

struct SolveResult {
  std::vector<double> X;
  double FinalObjective = 0.0;
  int Iterations = 0;
  bool Converged = false;

  /// Evaluations whose objective value or gradient came back non-finite
  /// (NaN/Inf). Zero on a healthy run — the guards never change the
  /// trajectory of a finite solve.
  int NonFiniteSteps = 0;
  /// Recovery-ladder rungs taken (revert + moment reset + step backoff)
  /// that produced a finite re-evaluation.
  int Recoveries = 0;
  /// The ladder ran dry: the result is the best finite iterate seen (or
  /// the projected initial point when nothing ever evaluated finite).
  bool FellBack = false;
  /// BudgetSeconds or ShouldStop ended the loop before convergence.
  bool DeadlineExpired = false;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_OBJECTIVE_H
