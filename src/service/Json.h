//===- service/Json.h - Minimal JSON values for the wire protocol -*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value type and recursive-descent parser for
/// the `seldond` request protocol. The daemon only ever parses one request
/// line at a time, so the implementation favors strictness and clear
/// errors over speed: the full input must be consumed, duplicate keys keep
/// the last value, depth is bounded (a hostile request cannot blow the
/// stack), and every failure produces a byte-offset diagnostic. Rendering
/// goes the other way through render(): numbers that hold integral values
/// print without a fractional part, so request ids round-trip exactly.
///
/// Responses are *built* with plain string concatenation (see
/// Protocol.cpp / QueryResult.cpp) — this type is for the parse side.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_JSON_H
#define SELDON_SERVICE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace seldon {
namespace service {

/// One parsed JSON value. Object keys are kept sorted (std::map) so
/// iteration — and anything rendered from it — is deterministic.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return Boolean; }
  double numberValue() const { return Number; }
  const std::string &stringValue() const { return Str; }
  const std::vector<JsonValue> &arrayValue() const { return Array; }
  const std::map<std::string, JsonValue> &objectValue() const {
    return Object;
  }

  /// Member lookup on an object; null for missing keys or non-objects.
  const JsonValue *get(const std::string &Key) const;

  /// Renders this value back to JSON text. Integral numbers print without
  /// a fractional part (id 3 comes back as `3`, not `3.000000`).
  std::string render() const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double N);
  static JsonValue makeString(std::string S);

private:
  friend class JsonParser;

  Kind K = Kind::Null;
  bool Boolean = false;
  double Number = 0.0;
  std::string Str;
  std::vector<JsonValue> Array;
  std::map<std::string, JsonValue> Object;
};

/// Parses \p Text as one complete JSON document (trailing whitespace
/// allowed, nothing else). Returns false with a byte-offset diagnostic in
/// \p Error on malformed input; \p Out is unspecified on failure.
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Error);

/// Renders \p N the way JsonValue::render does: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string renderJsonNumber(double N);

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_JSON_H
