//===- support/TablePrinter.h - Aligned console tables -----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper that renders aligned plain-text tables. The benchmark
/// binaries use it to print the paper's tables (Tab. 1-7) and figure series
/// in a stable, diffable format.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_TABLEPRINTER_H
#define SELDON_SUPPORT_TABLEPRINTER_H

#include <ostream>
#include <string>
#include <vector>

namespace seldon {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends a row; missing cells are rendered empty, extra cells asserted.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (headers, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace seldon

#endif // SELDON_SUPPORT_TABLEPRINTER_H
