//===- examples/explore_graph.cpp - Inspect one file's artifacts ----------===//
//
// Walks the paper's running example (Fig. 2a) through every front-end
// stage and prints the intermediate artifacts: the AST, the propagation
// graph with event representations (Fig. 2b), and the generated linear
// constraints (Fig. 2c).
//
//===----------------------------------------------------------------------===//

#include "constraints/ConstraintGen.h"
#include "propgraph/GraphBuilder.h"
#include "pyast/AstPrinter.h"

#include <cstdio>

using namespace seldon;

int main() {
  // Fig. 2a of the paper.
  const char *Source =
      "from yak.web import app\n"
      "from flask import request\n"
      "from werkzeug import secure_filename\n"
      "import os\n"
      "\n"
      "blog_dir = app.config['PATH']\n"
      "\n"
      "@app.route('/media/', methods=['POST'])\n"
      "def media():\n"
      "    filename = request.files['f'].filename\n"
      "    filename = secure_filename(filename)\n"
      "    path = os.path.join(blog_dir, filename)\n"
      "    if not os.path.exists(path):\n"
      "        request.files['f'].save(path)\n";

  std::printf("=== Source (paper Fig. 2a) ===\n%s\n", Source);

  pysem::Project Proj("fig2a");
  const pysem::ModuleInfo &Module = Proj.addModule("fig2a/app.py", Source);
  if (!Module.Errors.empty()) {
    std::printf("parse error: %s\n", Module.Errors.front().Message.c_str());
    return 1;
  }

  std::printf("=== AST ===\n%s\n", pyast::dumpAst(Module.Ast).c_str());

  propgraph::PropagationGraph Graph =
      propgraph::buildModuleGraph(Proj, Module);
  std::printf("=== Propagation graph (paper Fig. 2b): %zu events, %zu "
              "edges ===\n",
              Graph.numEvents(), Graph.numEdges());
  for (const propgraph::Event &E : Graph.events()) {
    std::printf("  [%u] %-10s %s\n", E.Id,
                propgraph::eventKindName(E.Kind), E.primaryRep().c_str());
    for (size_t I = 1; I < E.Reps.size(); ++I)
      std::printf("        backoff: %s\n", E.Reps[I].c_str());
    for (propgraph::EventId To : Graph.successors(E.Id))
      std::printf("        --> [%u] %s\n", To,
                  Graph.event(To).primaryRep().c_str());
  }

  // Seeds as in the paper's example: the sanitizer is known.
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("a: werkzeug.secure_filename()\n");
  propgraph::RepTable Reps;
  Reps.countOccurrences(Graph);
  constraints::GenOptions Opts;
  Opts.RepCutoff = 1; // Single file: keep every representation.
  constraints::ConstraintSystem Sys =
      constraints::generateConstraints(Graph, Reps, Seed, Opts);

  std::printf("\n=== Linear constraints (paper Fig. 2c): %zu constraints, "
              "%zu variables ===\n",
              Sys.Constraints.size(), Sys.Vars.numVars());
  auto TermName = [&](const solver::Term &T) {
    std::string Out;
    if (T.Coef != 1.0f)
      Out += std::to_string(T.Coef) + "*";
    Out += Reps.repString(Sys.Vars.repOf(T.Var));
    Out += "^";
    Out += propgraph::roleName(Sys.Vars.roleOf(T.Var));
    return Out;
  };
  size_t Shown = 0;
  for (const solver::LinearConstraint &C : Sys.Constraints) {
    if (++Shown > 12) {
      std::printf("  ... (%zu more)\n", Sys.Constraints.size() - 12);
      break;
    }
    std::string Line = "  ";
    for (size_t I = 0; I < C.Lhs.size(); ++I)
      Line += (I ? " + " : "") + TermName(C.Lhs[I]);
    Line += " <= ";
    for (size_t I = 0; I < C.Rhs.size(); ++I)
      Line += TermName(C.Rhs[I]) + " + ";
    Line += "C";
    std::printf("%s\n", Line.c_str());
  }
  return 0;
}
