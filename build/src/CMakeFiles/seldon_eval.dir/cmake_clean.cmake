file(REMOVE_RECURSE
  "CMakeFiles/seldon_eval.dir/eval/ExperimentDriver.cpp.o"
  "CMakeFiles/seldon_eval.dir/eval/ExperimentDriver.cpp.o.d"
  "CMakeFiles/seldon_eval.dir/eval/Precision.cpp.o"
  "CMakeFiles/seldon_eval.dir/eval/Precision.cpp.o.d"
  "CMakeFiles/seldon_eval.dir/eval/ReportClassifier.cpp.o"
  "CMakeFiles/seldon_eval.dir/eval/ReportClassifier.cpp.o.d"
  "libseldon_eval.a"
  "libseldon_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
