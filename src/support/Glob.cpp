//===- support/Glob.cpp - Wildcard pattern matching -----------------------===//

#include "support/Glob.h"

#include <algorithm>

using namespace seldon;

bool seldon::globMatch(std::string_view Pattern, std::string_view Text) {
  size_t P = 0, T = 0;
  size_t StarP = std::string_view::npos, StarT = 0;
  while (T < Text.size()) {
    if (P < Pattern.size() && Pattern[P] == '*') {
      // Record the star position; tentatively match it against the empty
      // string and extend on mismatch below.
      StarP = P++;
      StarT = T;
      continue;
    }
    if (P < Pattern.size() && Pattern[P] == Text[T]) {
      ++P;
      ++T;
      continue;
    }
    if (StarP == std::string_view::npos)
      return false;
    // Backtrack: let the last star consume one more character.
    P = StarP + 1;
    T = ++StarT;
  }
  while (P < Pattern.size() && Pattern[P] == '*')
    ++P;
  return P == Pattern.size();
}

void GlobSet::add(std::string_view Pattern) {
  Original.emplace_back(Pattern);
  if (Pattern.find('*') == std::string_view::npos)
    Exact.emplace_back(Pattern);
  else
    Wildcards.emplace_back(Pattern);
}

bool GlobSet::matches(std::string_view Text) const {
  if (std::find(Exact.begin(), Exact.end(), Text) != Exact.end())
    return true;
  for (const std::string &W : Wildcards)
    if (globMatch(W, Text))
      return true;
  return false;
}
