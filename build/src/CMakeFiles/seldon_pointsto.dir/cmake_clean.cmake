file(REMOVE_RECURSE
  "CMakeFiles/seldon_pointsto.dir/pointsto/AndersenSolver.cpp.o"
  "CMakeFiles/seldon_pointsto.dir/pointsto/AndersenSolver.cpp.o.d"
  "CMakeFiles/seldon_pointsto.dir/pointsto/PointsToAnalysis.cpp.o"
  "CMakeFiles/seldon_pointsto.dir/pointsto/PointsToAnalysis.cpp.o.d"
  "libseldon_pointsto.a"
  "libseldon_pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
